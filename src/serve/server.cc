#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <string>
#include <utility>

#include "common/logging.h"
#include "core/similarity.h"
#include "knn/knn_common.h"
#include "obs/obs.h"
#include "sim/traffic.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace pimine {
namespace serve {
namespace {

/// One shard's planned failover outcome for a dispatch (chaos replay):
/// recorded during the deterministic formation pass, exported as recovery
/// telemetry during the accounting pass.
struct FailoverNote {
  uint32_t shard = 0;
  int serving_replica = 0;  // -1 = shed off-device.
  int failed_attempts = 0;
  bool shed = false;
  uint64_t backoff_ns = 0;
};

/// One scheduler dispatch decided by the virtual-clock formation pass.
struct FormedBatch {
  uint64_t dispatch_ns = 0;
  uint64_t completion_ns = 0;
  double service_ns = 0.0;
  /// Some shard sat below the degrade watermark at dispatch_ns: the
  /// dispatch executes with bound-slack escalation.
  bool degraded = false;
  std::vector<PendingQuery> members;
  /// Shards whose replica ladder fires at this dispatch instant.
  std::vector<FailoverNote> notes;
};

uint64_t ToTicks(double ns) {
  return ns <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(ns));
}

std::vector<TenantServeStats> MakeTenantStats(const ServeOptions& options) {
  std::vector<TenantServeStats> tenants(options.num_tenants());
  for (size_t t = 0; t < tenants.size(); ++t) {
    tenants[t].name =
        options.tenants.empty() ? "default" : options.tenants[t].name;
  }
  return tenants;
}

}  // namespace

/// A live-mode in-flight query: the copied payload plus the promise the
/// submitting client blocks on.
struct PimServer::LiveRequest {
  std::vector<float> query;
  uint32_t tenant = 0;
  uint64_t arrival_ns = 0;
  std::promise<ServedResult> promise;
};

Result<std::unique_ptr<PimServer>> PimServer::Build(
    const FloatMatrix& data, Distance distance, const EngineOptions& engine,
    const ServeOptions& serve) {
  PIMINE_RETURN_IF_ERROR(serve.Validate());
  if (serve.k > static_cast<int>(data.rows())) {
    return Status::InvalidArgument("ServeOptions::k exceeds the dataset size");
  }
  std::unique_ptr<PimServer> server(new PimServer());
  server->options_ = serve;
  server->data_ = &data;
  server->distance_ = distance;
  server->maximize_ = IsSimilarityMeasure(distance);
  PIMINE_ASSIGN_OR_RETURN(server->engine_,
                          ShardedPimEngine::Build(data, distance, engine));
  if (serve.chaos.enabled()) {
    PIMINE_ASSIGN_OR_RETURN(
        server->chaos_,
        ChaosSchedule::Generate(
            serve.chaos, static_cast<uint32_t>(server->engine_->shards()),
            static_cast<uint32_t>(server->engine_->replicas())));
    server->engine_->set_chaos(&server->chaos_);
  }
  return server;
}

PimServer::~PimServer() { Stop(); }

// --------------------------------------------------------------------------
// Mutable datasets
// --------------------------------------------------------------------------

Status PimServer::AttachMutable(MutableDataset* dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("AttachMutable requires a dataset");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (&dataset->corpus() != data_) {
    return Status::InvalidArgument(
        "the server must be Built over dataset->corpus() (the corpus is "
        "the matrix the server reads)");
  }
  if (dataset_ != nullptr) {
    return Status::FailedPrecondition("a mutable dataset is already attached");
  }
  dataset_ = dataset;
  dataset->Attach(this);
  return Status::OK();
}

Status PimServer::OnInsert(const FloatMatrix& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "mutations are refused while live serving runs; Stop() first");
  }
  return engine_->AppendRows(rows);
}

Status PimServer::OnDelete(std::span<const uint32_t> rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "mutations are refused while live serving runs; Stop() first");
  }
  // Every served query returns k neighbours, so the live corpus may never
  // shrink below k.
  if (engine_->live_objects() < rows.size() + static_cast<size_t>(options_.k)) {
    return Status::FailedPrecondition(
        "delete would leave fewer than k=" + std::to_string(options_.k) +
        " live rows");
  }
  for (const uint32_t row : rows) {
    PIMINE_RETURN_IF_ERROR(engine_->DeleteRow(row));
  }
  return Status::OK();
}

Status PimServer::OnCompact(const std::vector<uint32_t>& live) {
  (void)live;  // the engine tracks its own tombstones.
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition(
        "mutations are refused while live serving runs; Stop() first");
  }
  return engine_->Compact();
}

bool PimServer::ShouldCompact() const {
  return options_.compact_watermark > 0.0 && dataset_ != nullptr &&
         dataset_->tombstoned_rows() > 0 &&
         dataset_->TombstoneFraction() >= options_.compact_watermark;
}

Status PimServer::MaybeCompact() {
  if (!ShouldCompact()) return Status::OK();
  // dataset_->Compact() notifies every listener, this server's OnCompact
  // included, so the fleet rewrite rides the normal mirroring path.
  PIMINE_RETURN_IF_ERROR(dataset_->Compact());
  std::lock_guard<std::mutex> lock(mu_);
  ++watermark_compactions_;
  return Status::OK();
}

uint64_t PimServer::watermark_compactions() const {
  return watermark_compactions_;
}

// --------------------------------------------------------------------------
// Shared dispatch execution
// --------------------------------------------------------------------------

void PimServer::RunDispatch(std::span<const float> qbuf,
                            const std::vector<PendingQuery>& members,
                            double device_ns_per_query,
                            const ShardedPimEngine::DispatchOptions& dispatch,
                            DispatchScratch* s) {
  const size_t dims = data_->cols();
  const size_t n = data_->rows();
  const size_t batch_size = members.size();
  const int k = options_.k;
  s->bounds.resize(n);
  s->neighbors.resize(batch_size);

  // One engine batch operation per device_batch chunk: max_batch bounds
  // the scheduler's coalescing, device_batch the per-operation GEMM width.
  const size_t device_batch = options_.exec.device_batch;
  for (size_t c0 = 0; c0 < batch_size; c0 += device_batch) {
    const size_t c1 = std::min(batch_size, c0 + device_batch);
    const size_t chunk = c1 - c0;
    // Label engine spans with the first member's admission id, matching
    // the batched harness convention (base + in-batch index = query id).
    obs::ScopedTrackBase track_base(static_cast<int64_t>(members[c0].id));
    const Status status = engine_->RunQueryBatch(
        std::span<const float>(qbuf.data() + c0 * dims, chunk * dims), chunk,
        &s->query, &s->handle, dispatch);
    if (!status.ok()) {
      if (s->status.ok()) s->status = status;
      return;
    }

    for (size_t bq = 0; bq < chunk; ++bq) {
      const PendingQuery& member = members[c0 + bq];
      obs::QuerySpan query_span(static_cast<int64_t>(member.id), &s->latency,
                                device_ns_per_query);
      const std::span<const float> q(qbuf.data() + (c0 + bq) * dims, dims);
      TopK topk(static_cast<size_t>(k));
      for (size_t i = 0; i < n; ++i) {
        // Negate similarity upper bounds so ascending order = most
        // promising first for both measure families (StandardPimKnn's
        // convention — served results must match the offline path).
        const double b = engine_->BoundFor(s->handle, bq, i);
        s->bounds[i] = maximize_ ? -b : b;
      }
      s->bound_count += n;

      const std::vector<uint32_t> order = ArgsortAscending(s->bounds);
      for (uint32_t idx : order) {
        if (topk.full() && s->bounds[idx] >= topk.threshold()) break;
        if (distance_ == Distance::kEuclidean) {
          const double d = SquaredEuclideanEarlyAbandon(data_->row(idx), q,
                                                        topk.threshold());
          topk.Push(d, static_cast<int32_t>(idx));
        } else {
          const double sim = distance_ == Distance::kCosine
                                 ? CosineSimilarity(data_->row(idx), q)
                                 : PearsonCorrelation(data_->row(idx), q);
          topk.Push(-sim, static_cast<int32_t>(idx));
        }
        ++s->exact_count;
      }
      s->neighbors[c0 + bq] =
          maximize_ ? FinalizeSimilarityNeighbors(topk) : topk.TakeSorted();
    }
  }
}

// --------------------------------------------------------------------------
// Virtual-clock replay
// --------------------------------------------------------------------------

Result<ReplayOutput> PimServer::Replay(const ArrivalTrace& trace,
                                       const FloatMatrix& queries) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition(
          "Replay cannot run while live serving is started; Stop() first");
    }
  }
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  const size_t num_tenants = options_.num_tenants();
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const ArrivalEvent& e = trace.events[i];
    if (i > 0 && e.arrival_ns < trace.events[i - 1].arrival_ns) {
      return Status::InvalidArgument(
          "arrival trace not sorted at event " + std::to_string(i));
    }
    if (e.tenant >= num_tenants) {
      return Status::InvalidArgument("event " + std::to_string(i) +
                                     " names unknown tenant " +
                                     std::to_string(e.tenant));
    }
    if (e.query_row >= queries.rows()) {
      return Status::InvalidArgument("event " + std::to_string(i) +
                                     " query_row out of range");
    }
  }

  ReplayOutput out;
  out.results.resize(trace.events.size());
  out.stats.tenants = MakeTenantStats(options_);
  Timer wall;

  // Replay telemetry plane: clocked by the VIRTUAL clock and fed only
  // from the deterministic single-threaded accounting below, so the JSON
  // exports are byte-identical for every scheduler_threads/shards value.
  obs::TimeSeries replay_ts(TimeSeriesOptionsFromServe());
  obs::EventLog replay_events(EventLogOptionsFromServe());

  // ---- Phase 1: batch formation (single deterministic pass) -------------
  //
  // One virtual device timeline: vt_free is the instant the device finishes
  // its current dispatch. A pending set dispatches at max(DueAt, vt_free) —
  // arrivals keep accumulating while the device is busy, which is exactly
  // how continuous batching converts offered load into batch occupancy.
  AdmissionQueue queue(options_);
  std::vector<FormedBatch> batches;
  uint64_t vt_free = 0;

  auto flush = [&](uint64_t horizon, uint64_t drain_floor) {
    while (!queue.empty()) {
      const uint64_t due =
          horizon == std::numeric_limits<uint64_t>::max()
              // Drain: no further arrivals can complete a batch, so
              // dispatch as soon as the device frees (Stop() semantics).
              ? std::max(drain_floor, queue.OldestArrivalNs())
              : queue.DueAtNs();
      const uint64_t dispatch = std::max(due, vt_free);
      if (dispatch >= horizon) break;
      FormedBatch b;
      b.dispatch_ns = dispatch;
      queue.FormBatch(&b.members);
      double service = 0.0;
      for (size_t c0 = 0; c0 < b.members.size();
           c0 += options_.exec.device_batch) {
        const size_t chunk =
            std::min(b.members.size() - c0, options_.exec.device_batch);
        service += engine_->ModeledBatchNs(chunk);
      }
      if (chaos_.enabled()) {
        // Plan the replica-failover ladder of every shard at this dispatch
        // instant: PlanFailover is pure in (schedule, options, dispatch),
        // so this single-threaded pass and the multi-threaded execution
        // walk identical ladders and charge identical extra time. Shards
        // run concurrently (max); a shard's device_batch chunks run
        // sequentially (sum over chunk sizes).
        b.degraded = DegradedShardAt(dispatch) >= 0;
        ShardedPimEngine::DispatchOptions dopt;
        dopt.now_ns = dispatch;
        dopt.deadline_ns = options_.batch_deadline_ns;
        const size_t db = options_.exec.device_batch;
        const size_t full_chunks = b.members.size() / db;
        const size_t rem = b.members.size() % db;
        double extra = 0.0;
        for (size_t j = 0; j < engine_->shards(); ++j) {
          double shard_extra = 0.0;
          ShardedPimEngine::FailoverPlan plan;
          if (full_chunks > 0) {
            plan = engine_->PlanFailover(j, db, dopt);
            shard_extra += static_cast<double>(full_chunks) * plan.extra_ns;
          }
          if (rem > 0) {
            plan = engine_->PlanFailover(j, rem, dopt);
            shard_extra += plan.extra_ns;
          }
          extra = std::max(extra, shard_extra);
          if (plan.failed_attempts > 0 || plan.shed) {
            FailoverNote note;
            note.shard = static_cast<uint32_t>(j);
            note.serving_replica = plan.serving_replica;
            note.failed_attempts = plan.failed_attempts;
            note.shed = plan.shed;
            note.backoff_ns = plan.backoff_ns;
            b.notes.push_back(note);
          }
        }
        service += extra;
      }
      b.service_ns = service;
      b.completion_ns = dispatch + ToTicks(service);
      vt_free = b.completion_ns;
      batches.push_back(std::move(b));
    }
  };

  const uint32_t min_weight = MinTenantWeight();
  uint64_t last_arrival = 0;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const ArrivalEvent& e = trace.events[i];
    flush(e.arrival_ns, 0);
    last_arrival = e.arrival_ns;
    ServedResult& r = out.results[i];
    r.tenant = e.tenant;
    r.arrival_ns = e.arrival_ns;
    // Degraded-mode load shedding: while any shard sits below the degrade
    // watermark, lowest-weight-tenant submissions are refused up front
    // with a 503-style CapacityExceeded naming the degraded shard.
    const int degraded_shard = DegradedShardAt(e.arrival_ns);
    if (degraded_shard >= 0 && TenantWeight(e.tenant) == min_weight) {
      r.status = Status::CapacityExceeded(
          "degraded: shard " + std::to_string(degraded_shard) + " has " +
          std::to_string(chaos_.HealthyReplicas(
              static_cast<uint32_t>(degraded_shard), e.arrival_ns)) +
          "/" + std::to_string(engine_->replicas()) +
          " healthy replicas (below watermark); shedding tenant '" +
          out.stats.tenants[e.tenant].name + "'");
      ++out.stats.shed_queries;
    } else {
      r.status = queue.Admit(i, e.tenant, e.arrival_ns);
    }
    ++out.stats.submitted;
    ++out.stats.tenants[e.tenant].submitted;
    if (!r.status.ok()) {
      ++out.stats.rejected;
      ++out.stats.tenants[e.tenant].rejected;
    } else {
      replay_ts.Observe("queue_depth", e.arrival_ns,
                        static_cast<double>(queue.pending()));
    }
  }
  flush(std::numeric_limits<uint64_t>::max(), last_arrival);
  PIMINE_DCHECK(queue.empty());

  // Per-request scheduling accounting, in formation order (deterministic).
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const FormedBatch& b = batches[bi];
    out.stats.occupancy_hist.Record(static_cast<double>(b.members.size()));
    replay_ts.Observe("batch_occupancy", b.dispatch_ns,
                      static_cast<double>(b.members.size()));
    out.stats.pipelined_ns += b.service_ns;
    if (b.degraded) {
      ++out.stats.degraded_batches;
      replay_ts.Count("degraded_batches", b.dispatch_ns);
    }
    // Recovery telemetry, still inside the deterministic pass: one record
    // per shard whose ladder fired at this dispatch. Chaos off -> no notes
    // -> the exports stay byte-identical to the pre-failover server.
    for (const FailoverNote& note : b.notes) {
      replay_ts.Count(note.shed ? "failover_shed" : "failover_recovered",
                      b.dispatch_ns);
      if (note.backoff_ns > 0) {
        replay_ts.Observe("failover_backoff_ns", b.dispatch_ns,
                          static_cast<double>(note.backoff_ns));
      }
      if (replay_events.enabled()) {
        obs::QueryEvent ev;
        ev.kind = obs::QueryEvent::Kind::kFailover;
        ev.batch_id = bi;
        ev.dispatch_ns = b.dispatch_ns;
        ev.shard = static_cast<int32_t>(note.shard);
        ev.replica = note.serving_replica;
        ev.failed_attempts = note.failed_attempts;
        ev.shed = note.shed;
        ev.backoff_ns = note.backoff_ns;
        ev.status = note.shed ? "SHED" : "RECOVERED";
        replay_events.AppendAlways(ev);
      }
    }
    for (const PendingQuery& m : b.members) {
      ServedResult& r = out.results[m.id];
      r.dispatch_ns = b.dispatch_ns;
      r.completion_ns = b.completion_ns;
      r.batch_id = bi;
      const uint64_t wait = b.dispatch_ns - m.arrival_ns;
      const uint64_t latency = b.completion_ns - m.arrival_ns;
      r.deadline_missed =
          options_.deadline_ns > 0 && latency > options_.deadline_ns;
      ++out.stats.served;
      out.stats.wait_hist.Record(static_cast<double>(wait));
      out.stats.latency_hist.Record(static_cast<double>(latency));
      TenantServeStats& ts = out.stats.tenants[m.tenant];
      ++ts.served;
      ts.latency.Record(static_cast<double>(latency));
      if (r.deadline_missed) {
        ++out.stats.deadline_misses;
        ++ts.deadline_misses;
      }
    }
  }
  // One telemetry record per trace event, in trace order (still the
  // deterministic pass — thread- and shard-independent by construction).
  for (size_t i = 0; i < out.results.size(); ++i) {
    RecordQueryTelemetry(out.results[i], i, &replay_ts, &replay_events);
  }
  out.timeseries_json = replay_ts.ToJson();
  out.events_jsonl = replay_events.ToJsonl();

  out.stats.batches = batches.size();
  out.stats.max_queue_depth = queue.max_depth();
  out.stats.makespan_ns = batches.empty() ? 0 : batches.back().completion_ns;
  out.stats.mean_batch_occupancy =
      batches.empty() ? 0.0
                      : static_cast<double>(out.stats.served) /
                            static_cast<double>(batches.size());

  // ---- Phase 2: execution of the formed batch sequence ------------------
  //
  // The sequence is fixed; workers claim whole dispatches (chunk = 1).
  // Everything a worker accumulates is slot-local and merged in slot
  // order, and the per-dispatch work depends only on the dispatch itself —
  // so results, traffic and modeled pim_ns are bit-identical for every
  // scheduler_threads (see DESIGN.md "Host-side parallelism").
  engine_->ResetOnlineStats();
  engine_->ResetReplicaHealth();
  traffic::AggregateScope traffic_scope;
  const double device_ns_per_query =
      obs::Obs::Enabled() ? engine_->SerialDeviceNsPerQuery() : 0.0;
  const size_t dims = data_->cols();

  ExecPolicy exec_policy;
  exec_policy.num_threads = options_.scheduler_threads;
  const size_t num_slots = NumSlots(exec_policy, batches.size(), 1);
  std::vector<DispatchScratch> scratch(num_slots);

  ParallelChunks(
      exec_policy, batches.size(), 1,
      [&](size_t begin, size_t end, size_t slot) {
        DispatchScratch& s = scratch[slot];
        for (size_t bi = begin; bi < end && s.status.ok(); ++bi) {
          const FormedBatch& b = batches[bi];
          s.qbuf.resize(b.members.size() * dims);
          for (size_t m = 0; m < b.members.size(); ++m) {
            const std::span<const float> row =
                queries.row(trace.events[b.members[m].id].query_row);
            std::copy(row.begin(), row.end(), s.qbuf.begin() + m * dims);
          }
          ShardedPimEngine::DispatchOptions dopt;
          dopt.now_ns = b.dispatch_ns;
          dopt.slack_on_exhaustion = b.degraded;
          dopt.deadline_ns = options_.batch_deadline_ns;
          RunDispatch(s.qbuf, b.members, device_ns_per_query, dopt, &s);
          if (!s.status.ok()) break;
          for (size_t m = 0; m < b.members.size(); ++m) {
            out.results[b.members[m].id].neighbors =
                std::move(s.neighbors[m]);
          }
        }
      });

  for (DispatchScratch& s : scratch) {
    PIMINE_RETURN_IF_ERROR(s.status);
    out.stats.exec.exact_count += s.exact_count;
    out.stats.exec.bound_count += s.bound_count;
    out.stats.exec.latency_hist.Merge(s.latency);
  }
  out.stats.exec.wall_ms = wall.ElapsedMillis();
  out.stats.exec.traffic = traffic_scope.Delta();
  out.stats.exec.pim_ns = engine_->PimComputeNs();
  out.stats.exec.fault = engine_->FaultStatsTotal();
  out.stats.exec.fleet = engine_->FleetStats();
  out.stats.exec.footprint_bytes =
      data_->rows() * sizeof(double) * 2 +
      (out.stats.served == 0
           ? 0
           : (out.stats.exec.exact_count / out.stats.served) * dims *
                 sizeof(float));
  ExportObsMetrics(out.stats);
  return out;
}

// --------------------------------------------------------------------------
// Live mode
// --------------------------------------------------------------------------

uint64_t PimServer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count());
}

Status PimServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already started");
  running_ = true;
  stop_ = false;
  next_id_ = 0;
  queue_ = std::make_unique<AdmissionQueue>(options_);
  live_stats_ = ServeStats{};
  live_stats_.tenants = MakeTenantStats(options_);
  live_device_ns_per_query_ =
      obs::Obs::Enabled() ? engine_->SerialDeviceNsPerQuery() : 0.0;
  start_time_ = std::chrono::steady_clock::now();
  live_ts_ = std::make_unique<obs::TimeSeries>(TimeSeriesOptionsFromServe());
  live_events_ =
      std::make_unique<obs::EventLog>(EventLogOptionsFromServe());
  engine_->ResetOnlineStats();
  engine_->ResetReplicaHealth();
  worker_scratch_.clear();
  workers_.clear();
  for (int w = 0; w < options_.scheduler_threads; ++w) {
    worker_scratch_.push_back(std::make_unique<DispatchScratch>());
  }
  for (int w = 0; w < options_.scheduler_threads; ++w) {
    workers_.emplace_back(&PimServer::WorkerLoop, this,
                          static_cast<size_t>(w));
  }
  return Status::OK();
}

Result<ServedResult> PimServer::Submit(uint32_t tenant,
                                       std::span<const float> query) {
  if (query.size() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  if (tenant >= options_.num_tenants()) {
    return Status::InvalidArgument("unknown tenant " + std::to_string(tenant));
  }
  std::future<ServedResult> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stop_) {
      return Status::FailedPrecondition("server not started");
    }
    const uint64_t arrival = NowNs();
    const uint64_t id = next_id_;
    ++live_stats_.submitted;
    ++live_stats_.tenants[tenant].submitted;
    // Degraded-mode load shedding (same rule as replay, on the live
    // clock): lowest-weight tenants are refused while a shard sits below
    // the degrade watermark.
    const int degraded_shard = DegradedShardAt(arrival);
    const bool shed =
        degraded_shard >= 0 && TenantWeight(tenant) == MinTenantWeight();
    const Status admitted =
        shed ? Status::CapacityExceeded(
                   "degraded: shard " + std::to_string(degraded_shard) +
                   " below the healthy-replica watermark; shedding tenant '" +
                   live_stats_.tenants[tenant].name + "'")
             : queue_->Admit(id, tenant, arrival);
    if (shed) ++live_stats_.shed_queries;
    if (!admitted.ok()) {
      // Backpressure: the client learns immediately; nothing is dropped
      // downstream.
      ++live_stats_.rejected;
      ++live_stats_.tenants[tenant].rejected;
      ServedResult rejected;
      rejected.status = admitted;
      rejected.tenant = tenant;
      rejected.arrival_ns = arrival;
      RecordQueryTelemetry(rejected, id, live_ts_.get(),
                           live_events_.get());
      return admitted;
    }
    live_ts_->Observe("queue_depth", arrival,
                      static_cast<double>(queue_->pending()));
    ++next_id_;
    auto request = std::make_unique<LiveRequest>();
    request->query.assign(query.begin(), query.end());
    request->tenant = tenant;
    request->arrival_ns = arrival;
    future = request->promise.get_future();
    live_requests_[id] = std::move(request);
  }
  cv_.notify_all();
  ServedResult result = future.get();
  if (!result.status.ok()) return result.status;
  return result;
}

void PimServer::WorkerLoop(size_t worker_index) {
  DispatchScratch& scratch = *worker_scratch_[worker_index];
  std::vector<PendingQuery> members;
  std::vector<std::unique_ptr<LiveRequest>> requests;
  const size_t dims = data_->cols();

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_->empty(); });
    if (queue_->empty()) {
      if (stop_) return;
      continue;
    }
    // Continuous batching: dispatch once a full batch is pending or the
    // oldest query has waited max_wait_ns; otherwise sleep until that
    // deadline (new arrivals re-evaluate via notify). Stop() dispatches
    // whatever is pending immediately (the drain).
    const uint64_t now = NowNs();
    const uint64_t due = queue_->DueAtNs();
    if (!stop_ && now < due && queue_->pending() < options_.max_batch) {
      cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    const uint64_t dispatch_ns = std::max(now, queue_->OldestArrivalNs());
    queue_->FormBatch(&members);
    requests.clear();
    for (const PendingQuery& m : members) {
      auto it = live_requests_.find(m.id);
      PIMINE_DCHECK(it != live_requests_.end());
      requests.push_back(std::move(it->second));
      live_requests_.erase(it);
    }
    lock.unlock();

    scratch.qbuf.resize(members.size() * dims);
    for (size_t m = 0; m < members.size(); ++m) {
      std::copy(requests[m]->query.begin(), requests[m]->query.end(),
                scratch.qbuf.begin() + m * dims);
    }
    ShardedPimEngine::DispatchOptions dopt;
    dopt.now_ns = dispatch_ns;
    dopt.slack_on_exhaustion = DegradedShardAt(dispatch_ns) >= 0;
    dopt.deadline_ns = options_.batch_deadline_ns;
    RunDispatch(scratch.qbuf, members, live_device_ns_per_query_, dopt,
                &scratch);
    const uint64_t completion_ns = NowNs();

    lock.lock();
    ++live_stats_.batches;
    if (dopt.slack_on_exhaustion) ++live_stats_.degraded_batches;
    live_stats_.occupancy_hist.Record(static_cast<double>(members.size()));
    live_ts_->Observe("batch_occupancy", dispatch_ns,
                      static_cast<double>(members.size()));
    for (size_t m = 0; m < members.size(); ++m) {
      ServedResult r;
      r.status = scratch.status;
      r.tenant = members[m].tenant;
      r.arrival_ns = members[m].arrival_ns;
      r.dispatch_ns = dispatch_ns;
      r.completion_ns = completion_ns;
      r.batch_id = live_stats_.batches - 1;
      if (r.status.ok()) {
        r.neighbors = std::move(scratch.neighbors[m]);
        const uint64_t latency = completion_ns - r.arrival_ns;
        r.deadline_missed =
            options_.deadline_ns > 0 && latency > options_.deadline_ns;
        ++live_stats_.served;
        live_stats_.wait_hist.Record(
            static_cast<double>(dispatch_ns - r.arrival_ns));
        live_stats_.latency_hist.Record(static_cast<double>(latency));
        TenantServeStats& ts = live_stats_.tenants[r.tenant];
        ++ts.served;
        ts.latency.Record(static_cast<double>(latency));
        if (r.deadline_missed) {
          ++live_stats_.deadline_misses;
          ++ts.deadline_misses;
        }
      }
      RecordQueryTelemetry(r, members[m].id, live_ts_.get(),
                           live_events_.get());
      requests[m]->promise.set_value(std::move(r));
    }
    scratch.status = Status::OK();
    requests.clear();
  }
}

void PimServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  // Workers drain the queue before exiting, so nothing should be pending;
  // fail any straggler promise rather than leaving a client blocked.
  for (auto& [id, request] : live_requests_) {
    ServedResult r;
    r.status = Status::FailedPrecondition("server stopped");
    request->promise.set_value(std::move(r));
  }
  live_requests_.clear();
}

ServeStats PimServer::LiveStats() {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats stats = live_stats_;
  stats.watermark_compactions = watermark_compactions_;
  if (queue_ != nullptr) stats.max_queue_depth = queue_->max_depth();
  stats.mean_batch_occupancy =
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.served) /
                               static_cast<double>(stats.batches);
  stats.makespan_ns = NowNs();
  for (const std::unique_ptr<DispatchScratch>& s : worker_scratch_) {
    stats.exec.exact_count += s->exact_count;
    stats.exec.bound_count += s->bound_count;
    stats.exec.latency_hist.Merge(s->latency);
  }
  stats.exec.pim_ns = engine_->PimComputeNs();
  stats.pipelined_ns = engine_->PimPipelinedNs();
  stats.exec.fault = engine_->FaultStatsTotal();
  stats.exec.fleet = engine_->FleetStats();
  return stats;
}

void PimServer::FillServeMetrics(const ServeStats& stats,
                                 obs::MetricsRegistry* registry) const {
  obs::MetricsRegistry& metrics = *registry;
  metrics.SetHelp("pimine_serve_submitted_total",
                  "Queries submitted to the admission queue.");
  metrics.SetHelp("pimine_serve_served_total",
                  "Queries served to completion.");
  metrics.SetHelp("pimine_serve_rejected_total",
                  "Queries rejected by admission-queue backpressure.");
  metrics.SetHelp("pimine_serve_deadline_misses_total",
                  "Served queries whose latency exceeded deadline_ns.");
  metrics.SetHelp("pimine_serve_batches_total",
                  "Scheduler dispatches issued.");
  metrics.SetHelp("pimine_serve_max_queue_depth",
                  "High-water mark of the admission queue depth.");
  metrics.SetHelp("pimine_serve_mean_batch_occupancy",
                  "served / batches of the run so far.");
  metrics.SetHelp("pimine_serve_wait_ns",
                  "Arrival-to-dispatch wait per served query.");
  metrics.SetHelp("pimine_serve_latency_ns",
                  "Arrival-to-completion latency per served query.");
  metrics.SetHelp("pimine_serve_batch_occupancy",
                  "Queries coalesced per scheduler dispatch.");
  metrics.SetHelp("pimine_serve_shed_queries_total",
                  "Submissions refused by degraded-mode load shedding.");
  metrics.SetHelp("pimine_serve_degraded_batches_total",
                  "Dispatches formed while a shard sat below the degrade "
                  "watermark.");
  metrics.SetHelp("pimine_serve_watermark_compactions_total",
                  "Compactions fired by the tombstone watermark.");
  metrics.GetCounter("pimine_serve_watermark_compactions_total")
      .Add(stats.watermark_compactions);
  metrics.GetCounter("pimine_serve_submitted_total").Add(stats.submitted);
  metrics.GetCounter("pimine_serve_served_total").Add(stats.served);
  metrics.GetCounter("pimine_serve_rejected_total").Add(stats.rejected);
  metrics.GetCounter("pimine_serve_shed_queries_total")
      .Add(stats.shed_queries);
  metrics.GetCounter("pimine_serve_degraded_batches_total")
      .Add(stats.degraded_batches);
  metrics.GetCounter("pimine_serve_deadline_misses_total")
      .Add(stats.deadline_misses);
  metrics.GetCounter("pimine_serve_batches_total").Add(stats.batches);
  metrics.GetGauge("pimine_serve_max_queue_depth")
      .Set(static_cast<double>(stats.max_queue_depth));
  metrics.GetGauge("pimine_serve_mean_batch_occupancy")
      .Set(stats.mean_batch_occupancy);
  metrics.MergeHistogram("pimine_serve_wait_ns", stats.wait_hist);
  metrics.MergeHistogram("pimine_serve_latency_ns", stats.latency_hist);
  metrics.MergeHistogram("pimine_serve_batch_occupancy",
                         stats.occupancy_hist);
  metrics.SetHelp("pimine_serve_tenant_served_total",
                  "Queries served, by tenant.");
  metrics.SetHelp("pimine_serve_tenant_rejected_total",
                  "Queries rejected, by tenant.");
  metrics.SetHelp("pimine_serve_tenant_deadline_misses_total",
                  "Deadline misses, by tenant.");
  for (const TenantServeStats& t : stats.tenants) {
    const obs::MetricLabels labels = {{"tenant", t.name}};
    metrics.GetCounter("pimine_serve_tenant_served_total", labels)
        .Add(t.served);
    metrics.GetCounter("pimine_serve_tenant_rejected_total", labels)
        .Add(t.rejected);
    metrics.GetCounter("pimine_serve_tenant_deadline_misses_total", labels)
        .Add(t.deadline_misses);
  }
}

void PimServer::ExportObsMetrics(const ServeStats& stats) const {
  obs::Obs* obs = obs::Obs::Get();
  if (obs == nullptr) return;
  FillServeMetrics(stats, &obs->metrics());
  // The fleet plane too (pimine_fleet_* / pimine_failover_* families), so
  // a replay's --metrics_out carries the same shard-health and failover
  // counters the live /metrics endpoint exposes.
  engine_->ExportMetrics(&obs->metrics());
}

obs::TimeSeriesOptions PimServer::TimeSeriesOptionsFromServe() const {
  obs::TimeSeriesOptions ts;
  ts.window_ns = options_.ts_window_ns;
  ts.num_windows = options_.ts_windows;
  ts.slo_budget = options_.slo_budget;
  return ts;
}

obs::EventLogOptions PimServer::EventLogOptionsFromServe() const {
  obs::EventLogOptions ev;
  ev.sample_rate = options_.event_sample_rate;
  ev.seed = options_.event_seed;
  ev.capacity = options_.event_capacity;
  return ev;
}

void PimServer::RecordQueryTelemetry(const ServedResult& r, uint64_t query_id,
                                     obs::TimeSeries* ts,
                                     obs::EventLog* events) const {
  ts->SetSlo("deadline_missed", "served");
  ts->Count("submitted", r.arrival_ns);
  obs::QueryEvent event;
  event.query_id = query_id;
  event.tenant = r.tenant;
  event.arrival_ns = r.arrival_ns;
  event.status = std::string(StatusCodeToString(r.status.code()));
  if (!r.status.ok()) {
    // Rejected (or failed) submissions never dispatched: only arrival-side
    // series move.
    ts->Count("rejected", r.arrival_ns);
    if (events->enabled()) events->Append(event);
    return;
  }
  ts->Count("served", r.completion_ns);
  if (r.deadline_missed) ts->Count("deadline_missed", r.completion_ns);
  ts->Observe("wait_ns", r.dispatch_ns,
              static_cast<double>(r.dispatch_ns - r.arrival_ns));
  ts->Observe("latency_ns", r.completion_ns,
              static_cast<double>(r.completion_ns - r.arrival_ns));
  if (events->enabled()) {
    event.dispatch_ns = r.dispatch_ns;
    event.completion_ns = r.completion_ns;
    event.batch_id = r.batch_id;
    event.deadline_missed = r.deadline_missed;
    events->Append(event);
  }
}

int PimServer::DegradedShardAt(uint64_t t) const {
  if (!chaos_.enabled() || options_.degrade_watermark <= 0.0) return -1;
  const double replicas = static_cast<double>(engine_->replicas());
  for (size_t j = 0; j < engine_->shards(); ++j) {
    const double healthy = static_cast<double>(
        chaos_.HealthyReplicas(static_cast<uint32_t>(j), t));
    if (healthy / replicas < options_.degrade_watermark) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

uint32_t PimServer::TenantWeight(uint32_t tenant) const {
  return options_.tenants.empty() ? 1 : options_.tenants[tenant].weight;
}

uint32_t PimServer::MinTenantWeight() const {
  uint32_t min_weight = std::numeric_limits<uint32_t>::max();
  for (size_t t = 0; t < options_.num_tenants(); ++t) {
    min_weight = std::min(min_weight, TenantWeight(static_cast<uint32_t>(t)));
  }
  return min_weight;
}

std::string PimServer::HealthzBody() const {
  if (engine_->DegradedShards() == 0) return "ok\n";
  // Still a healthy-liveness body (HTTP 200); "degraded" distinguishes a
  // fleet serving off-primary or in bound-slack mode.
  std::string body = "ok degraded\n";
  for (size_t j = 0; j < engine_->shards(); ++j) {
    if (!engine_->shard_degraded(j)) continue;
    size_t replicas_out = 0;
    for (int r = 0; r < engine_->replicas(); ++r) {
      if (engine_->replica_out(j, static_cast<size_t>(r))) ++replicas_out;
    }
    body += "shard " + std::to_string(j) + ": serving_replica=" +
            std::to_string(engine_->serving_replica(j)) +
            " slack=" + (engine_->shard_slack_mode(j) ? "1" : "0") +
            " replicas_out=" + std::to_string(replicas_out) + "\n";
  }
  return body;
}

std::string PimServer::MetricsText() {
  // A FRESH registry per scrape: counters carry absolute run totals, so
  // repeated scrapes are idempotent snapshots (the global obs registry, by
  // contrast, accumulates across runs).
  obs::MetricsRegistry registry;
  const ServeStats stats = LiveStats();
  FillServeMetrics(stats, &registry);
  {
    // Mutations hold mu_, so a scrape never reads the fleet mid-mutation.
    std::lock_guard<std::mutex> lock(mu_);
    engine_->ExportMetrics(&registry);
  }
  return registry.ToPrometheus();
}

std::string PimServer::TimeSeriesJson() {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_ts_ == nullptr) {
    return obs::TimeSeries(TimeSeriesOptionsFromServe()).ToJson();
  }
  return live_ts_->ToJson();
}

std::string PimServer::EventsJsonl() {
  std::lock_guard<std::mutex> lock(mu_);
  return live_events_ == nullptr ? std::string() : live_events_->ToJsonl();
}

}  // namespace serve
}  // namespace pimine
