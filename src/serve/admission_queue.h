#ifndef PIMINE_SERVE_ADMISSION_QUEUE_H_
#define PIMINE_SERVE_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "serve/serve_options.h"

namespace pimine {
namespace serve {

/// One query waiting for (or picked into) a dispatch. The payload lives in
/// the server's request table; the queue moves only this 24-byte ticket.
struct PendingQuery {
  uint64_t id = 0;          // admission order, dense from 0.
  uint32_t tenant = 0;
  uint64_t arrival_ns = 0;  // virtual (replay) or steady-clock (live) time.
};

/// Bounded multi-producer admission queue with weighted-fair batch forming
/// — the data structure between client submissions and the continuous-
/// batching scheduler.
///
/// The structure itself is NOT synchronized: the live server calls it under
/// one short mutex (admission pushes a ticket and bumps a counter — no
/// allocation once the per-tenant rings reach steady-state capacity; no
/// lock is ever taken on the execution path), and the virtual-clock replay
/// drives it from the single deterministic batch-forming pass. Keeping the
/// queue lock-free-agnostic is what lets the exact same forming code run
/// under both clocks, which is the determinism story: batch composition is
/// a pure function of (admission sequence, knobs), never of thread timing.
///
/// Fairness is stride scheduling over per-tenant FIFOs: picking from tenant
/// t advances its pass by kStrideScale / weight_t, and every pick takes the
/// non-empty tenant with the smallest (pass, tenant id). A tenant idling
/// while others are served banks no credit: its pass is forwarded to the
/// global floor on re-activation. Within a tenant, order is strict FIFO.
class AdmissionQueue {
 public:
  /// Pass-counter scale; one full share for a weight-1 tenant. Weights are
  /// clamped to it, making every stride >= 1 (no starvation of the floor
  /// update).
  static constexpr uint64_t kStrideScale = 1u << 20;

  AdmissionQueue(const ServeOptions& options);

  /// Admits one query. Fails with CapacityExceeded (naming depth and
  /// capacity) when `queue_capacity` queries are already pending — the
  /// backpressure contract: the caller learns immediately, nothing is
  /// dropped later. `tenant` must be < num_tenants and arrivals must be
  /// non-decreasing across calls.
  Status Admit(uint64_t id, uint32_t tenant, uint64_t arrival_ns);

  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }
  /// High-water mark of pending() over the queue's lifetime.
  uint64_t max_depth() const { return max_depth_; }

  /// Earliest arrival among pending queries. Pre: !empty().
  uint64_t OldestArrivalNs() const;

  /// The virtual instant the current pending set must dispatch, absent
  /// further arrivals: with >= max_batch pending, the arrival of the
  /// max_batch-th oldest query (a full batch has existed since then); else
  /// the oldest query's arrival + max_wait_ns (saturating). Pre: !empty().
  uint64_t DueAtNs() const;

  /// Pops up to max_batch queries by weighted-fair pick into `out`
  /// (cleared first). Pre: !empty(). Post: out is non-empty.
  void FormBatch(std::vector<PendingQuery>* out);

 private:
  struct TenantQueue {
    std::deque<PendingQuery> fifo;
    uint64_t pass = 0;
    uint64_t stride = kStrideScale;
  };

  size_t max_batch_;
  uint64_t max_wait_ns_;
  size_t capacity_;
  std::vector<TenantQueue> tenants_;
  size_t pending_ = 0;
  uint64_t max_depth_ = 0;
  /// Pass value of the most recent pick: re-activating tenants fast-forward
  /// here so an idle period cannot bank an unbounded burst entitlement.
  uint64_t pass_floor_ = 0;
};

}  // namespace serve
}  // namespace pimine

#endif  // PIMINE_SERVE_ADMISSION_QUEUE_H_
