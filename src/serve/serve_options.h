#ifndef PIMINE_SERVE_SERVE_OPTIONS_H_
#define PIMINE_SERVE_SERVE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pim/chaos.h"
#include "util/parallel.h"

namespace pimine {
namespace serve {

/// One serving tenant: a named traffic class with a weighted-fair share of
/// every contended batch. Weights are relative (a weight-3 tenant gets
/// three picks per weight-1 pick while both have queries pending); idle
/// tenants bank no credit.
struct TenantSpec {
  std::string name = "default";
  uint32_t weight = 1;
};

/// Knobs of the continuous-batching scheduler. The scheduler coalesces
/// single-query submissions into device batches to keep the Q-pipeline
/// (PimTimingModel::BatchDotLatencyNs = stage_ns*(stages+Q-1)) full; every
/// knob trades latency against batch occupancy, never correctness — batch
/// composition cannot change any query's neighbours.
struct ServeOptions {
  /// Queries coalesced into one scheduler dispatch (upper bound). A
  /// dispatch of B queries issues ceil(B / exec.device_batch) PIM batch
  /// operations, so max_batch composes with ExecPolicy::device_batch: the
  /// former bounds admission coalescing, the latter the per-operation GEMM
  /// width.
  size_t max_batch = 16;
  /// Longest time a query may wait in the admission queue for companions
  /// before the scheduler dispatches a partial batch. 0 = greedy dispatch:
  /// never hold a query while the device is free (single-query batches take
  /// the Q=1 fast path, bit-identical to direct RunQuery).
  uint64_t max_wait_ns = 1000000;
  /// Per-query latency SLO measured from arrival to modeled completion.
  /// Queries are still served past the deadline, but every miss is counted
  /// (globally and per tenant). 0 disables deadline accounting.
  uint64_t deadline_ns = 0;
  /// Bounded admission queue: a submission finding `queue_capacity` queries
  /// already pending is rejected with StatusCode::kCapacityExceeded — the
  /// explicit backpressure signal; nothing is ever silently dropped.
  size_t queue_capacity = 1024;
  /// Worker threads executing formed batches. In virtual-clock replay the
  /// batch SEQUENCE is always formed by one deterministic pass, so results,
  /// traffic counters and modeled pim_ns are bit-identical for any value.
  int scheduler_threads = 1;
  /// Neighbours returned per query.
  int k = 10;
  /// Device-batch width for the PIM operations of one dispatch (and the
  /// blocked-kernel flag; num_threads is ignored — parallelism comes from
  /// scheduler_threads so the shared pool is never entered twice).
  ExecPolicy exec;
  /// Traffic classes. Empty = one implicit "default" tenant of weight 1.
  std::vector<TenantSpec> tenants;

  // --- Robustness / chaos knobs ---------------------------------------
  /// Seeded availability-fault schedule generated at Build over the fleet
  /// geometry and evaluated on the scheduler's clock (virtual in replay).
  /// Disabled by default — bit-identical to the pre-chaos server.
  ChaosConfig chaos;
  /// Per-dispatch failover-ladder budget: cumulative seeded backoff one
  /// dispatch may spend walking a shard's replicas before the op sheds
  /// off-device. 0 = unbounded (walk every replica).
  uint64_t batch_deadline_ns = 0;
  /// Degraded-mode watermark in [0, 1]: when any shard's healthy-replica
  /// fraction (per the chaos schedule, at the evaluation instant) drops
  /// below it, the scheduler switches exhausted shards to bound-slack
  /// fills and sheds lowest-weight-tenant load with CapacityExceeded. 0
  /// disables degraded mode.
  double degrade_watermark = 0.0;

  // --- Mutable-dataset knobs ------------------------------------------
  /// Compaction watermark in [0, 1]: when the attached mutable dataset's
  /// tombstone fraction reaches it, MaybeCompact() rewrites base+delta
  /// into a fresh dense base (charged at program cost on every device
  /// copy). 0 disables the trigger — compaction then only runs when the
  /// caller compacts the dataset explicitly.
  double compact_watermark = 0.0;

  // --- Telemetry plane (obs) knobs ------------------------------------
  // None of these can change results or traffic: the plane only observes
  // the accounting the scheduler already produces.
  /// Width of one rolling telemetry window in ns of the driving clock
  /// (virtual ns in replay, steady-clock ns in live mode).
  uint64_t ts_window_ns = 1'000'000;
  /// Rolling windows retained by the serving timeseries.
  size_t ts_windows = 64;
  /// SLO error budget (tolerated deadline-miss fraction) driving the
  /// two-window burn rate. Only meaningful when deadline_ns > 0.
  double slo_budget = 0.001;
  /// Hash-based per-query event-log sample rate in [0, 1]; 0 disables the
  /// event log. Sampling is a pure function of (event_seed, query id) —
  /// the same queries are kept for any thread/shard count.
  double event_sample_rate = 0.0;
  /// Salt of the event-log sampling hash.
  uint64_t event_seed = 0;
  /// Newest sampled events retained by the bounded event-log ring.
  size_t event_capacity = 4096;

  size_t num_tenants() const {
    return tenants.empty() ? 1 : tenants.size();
  }

  Status Validate() const {
    if (max_batch == 0) {
      return Status::InvalidArgument("ServeOptions::max_batch must be >= 1");
    }
    if (queue_capacity == 0) {
      return Status::InvalidArgument(
          "ServeOptions::queue_capacity must be >= 1");
    }
    if (scheduler_threads < 1) {
      return Status::InvalidArgument(
          "ServeOptions::scheduler_threads must be >= 1");
    }
    if (k < 1) return Status::InvalidArgument("ServeOptions::k must be >= 1");
    if (exec.device_batch == 0) {
      return Status::InvalidArgument(
          "ExecPolicy::device_batch must be >= 1 (one query per device "
          "operation); 0 is not a valid batch size");
    }
    if (ts_window_ns == 0) {
      return Status::InvalidArgument(
          "ServeOptions::ts_window_ns must be >= 1");
    }
    if (ts_windows == 0) {
      return Status::InvalidArgument("ServeOptions::ts_windows must be >= 1");
    }
    if (!(slo_budget > 0.0) || slo_budget > 1.0) {
      return Status::InvalidArgument(
          "ServeOptions::slo_budget must be in (0, 1]");
    }
    if (!(event_sample_rate >= 0.0) || event_sample_rate > 1.0) {
      return Status::InvalidArgument(
          "ServeOptions::event_sample_rate must be in [0, 1]");
    }
    if (event_capacity == 0) {
      return Status::InvalidArgument(
          "ServeOptions::event_capacity must be >= 1");
    }
    for (const TenantSpec& t : tenants) {
      if (t.weight == 0) {
        return Status::InvalidArgument("tenant '" + t.name +
                                       "' must have weight >= 1");
      }
    }
    {
      const Status chaos_status = chaos.Validate();
      if (!chaos_status.ok()) return chaos_status;
    }
    if (!(degrade_watermark >= 0.0) || degrade_watermark > 1.0) {
      return Status::InvalidArgument(
          "ServeOptions::degrade_watermark must be in [0, 1]");
    }
    if (!(compact_watermark >= 0.0) || compact_watermark > 1.0) {
      return Status::InvalidArgument(
          "ServeOptions::compact_watermark must be in [0, 1]");
    }
    return Status::OK();
  }
};

}  // namespace serve
}  // namespace pimine

#endif  // PIMINE_SERVE_SERVE_OPTIONS_H_
