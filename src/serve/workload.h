#ifndef PIMINE_SERVE_WORKLOAD_H_
#define PIMINE_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pimine {
namespace serve {

/// One recorded client submission: at `arrival_ns` (virtual time), tenant
/// `tenant` submitted query row `query_row` of the replay's query matrix.
struct ArrivalEvent {
  uint64_t arrival_ns = 0;
  uint32_t tenant = 0;
  uint32_t query_row = 0;
};

/// A recorded query stream, the input of PimServer::Replay. Events must be
/// sorted by arrival (ties keep recorded order — the admission order). The
/// trace plus the ServeOptions knobs fully determine batch composition,
/// which is what makes serving results replayable bit-for-bit.
struct ArrivalTrace {
  std::vector<ArrivalEvent> events;
};

/// Parameters of the synthetic open-loop workload generator.
struct WorkloadSpec {
  size_t num_requests = 256;
  /// Offered load: mean arrival rate in queries per second of virtual time
  /// (Poisson process — exponential inter-arrival gaps).
  double offered_qps = 1e6;
  /// Relative traffic share per tenant (independent of the fairness
  /// weights; a tenant can offer more traffic than its fair share, which is
  /// exactly the skew the weighted scheduler absorbs). Empty = one tenant.
  std::vector<double> tenant_share;
  /// Query rows are drawn uniformly from [0, num_query_rows).
  uint32_t num_query_rows = 1;
  uint64_t seed = 42;
};

/// Deterministic Poisson query stream: exponential inter-arrival times at
/// `offered_qps`, tenants drawn by `tenant_share`, query rows uniform — all
/// from one seeded Rng, so a (spec) pair names one exact trace forever.
/// Fails on zero requests/rate/shares.
Result<ArrivalTrace> GeneratePoissonTrace(const WorkloadSpec& spec);

/// The degenerate offline trace: every query of every tenant arrives at
/// virtual time 0 (round-robin over tenants, query rows cycling). With
/// max_wait = 0 this makes the scheduler reproduce exactly the offline
/// RunQueryBatchesWithPolicy partition — the equivalence the tests pin.
ArrivalTrace AllAtZeroTrace(size_t num_requests, uint32_t num_tenants,
                            uint32_t num_query_rows);

}  // namespace serve
}  // namespace pimine

#endif  // PIMINE_SERVE_WORKLOAD_H_
