#include "serve/workload.h"

#include <cmath>
#include <string>

#include "util/random.h"

namespace pimine {
namespace serve {

Result<ArrivalTrace> GeneratePoissonTrace(const WorkloadSpec& spec) {
  if (spec.num_requests == 0) {
    return Status::InvalidArgument("WorkloadSpec::num_requests must be >= 1");
  }
  if (!(spec.offered_qps > 0.0)) {
    return Status::InvalidArgument("WorkloadSpec::offered_qps must be > 0");
  }
  if (spec.num_query_rows == 0) {
    return Status::InvalidArgument("WorkloadSpec::num_query_rows must be >= 1");
  }
  std::vector<double> cumulative;
  if (!spec.tenant_share.empty()) {
    double total = 0.0;
    for (size_t t = 0; t < spec.tenant_share.size(); ++t) {
      if (!(spec.tenant_share[t] > 0.0)) {
        return Status::InvalidArgument("WorkloadSpec::tenant_share[" +
                                       std::to_string(t) + "] must be > 0");
      }
      total += spec.tenant_share[t];
      cumulative.push_back(total);
    }
    for (double& c : cumulative) c /= total;
  }

  Rng rng(spec.seed);
  const double mean_gap_ns = 1e9 / spec.offered_qps;
  ArrivalTrace trace;
  trace.events.reserve(spec.num_requests);
  double clock_ns = 0.0;
  for (size_t i = 0; i < spec.num_requests; ++i) {
    // Exponential inter-arrival gap via inverse CDF; 1 - u avoids log(0).
    clock_ns += -std::log(1.0 - rng.NextDouble()) * mean_gap_ns;
    ArrivalEvent e;
    e.arrival_ns = static_cast<uint64_t>(clock_ns);
    if (!cumulative.empty()) {
      const double u = rng.NextDouble();
      while (e.tenant + 1 < cumulative.size() && u >= cumulative[e.tenant]) {
        ++e.tenant;
      }
    }
    e.query_row = static_cast<uint32_t>(rng.NextBounded(spec.num_query_rows));
    trace.events.push_back(e);
  }
  return trace;
}

ArrivalTrace AllAtZeroTrace(size_t num_requests, uint32_t num_tenants,
                            uint32_t num_query_rows) {
  ArrivalTrace trace;
  trace.events.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    ArrivalEvent e;
    e.arrival_ns = 0;
    e.tenant = num_tenants == 0 ? 0 : static_cast<uint32_t>(i % num_tenants);
    e.query_row =
        num_query_rows == 0 ? 0 : static_cast<uint32_t>(i % num_query_rows);
    trace.events.push_back(e);
  }
  return trace;
}

}  // namespace serve
}  // namespace pimine
