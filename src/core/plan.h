#ifndef PIMINE_CORE_PLAN_H_
#define PIMINE_CORE_PLAN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pimine {

/// One member of the candidate bound set of §V-D (original bounds f_B plus
/// the PIM-aware bound G).
struct BoundCandidate {
  std::string name;
  /// T_cost(B_i): bits transferred from memory per candidate object when
  /// evaluating this bound (e.g. d/64*b for LB_FNN^{d/64}; 3*b for a
  /// PIM-aware bound).
  double transfer_bits = 0.0;
  /// Pr(B_i): fraction of candidates the bound prunes, measured offline on
  /// a sample (see MeasurePruningRatio).
  double pruning_ratio = 0.0;
  /// True for PIM-aware bounds (reported in plan summaries).
  bool is_pim = false;
};

/// A chosen execution plan: which candidates to apply, in order.
struct ExecutionPlan {
  /// Indices into the candidate vector, in application order.
  std::vector<size_t> selected;
  /// Eq. 13 cost per object in bits, including the final exact refinement.
  double cost_bits_per_object = 0.0;

  std::string ToString(std::span<const BoundCandidate> candidates) const;
};

/// §V-D / Eq. 13: enumerates all 2^L subsets of the candidate set (bounds
/// keep the given order, which should be increasing tightness) and returns
/// the subset with the least estimated data transfer. `exact_cost_bits` is
/// the transfer cost of the exact distance computation applied to whatever
/// survives every selected bound (d*b bits). Pruning ratios are treated as
/// independent, as in the paper.
ExecutionPlan ChooseExecutionPlan(std::span<const BoundCandidate> candidates,
                                  double exact_cost_bits);

/// Eq. 13 cost of one specific ordered selection.
double PlanCostBits(std::span<const BoundCandidate> candidates,
                    std::span<const size_t> selected, double exact_cost_bits);

/// Measures Pr(B): the fraction of `bound_values` that prune against
/// `threshold`. For lower bounds (distance measures) a candidate is pruned
/// when bound > threshold; for upper bounds (similarity measures) when
/// bound < threshold.
double MeasurePruningRatio(std::span<const double> bound_values,
                           double threshold, bool is_upper_bound);

}  // namespace pimine

#endif  // PIMINE_CORE_PLAN_H_
