#ifndef PIMINE_CORE_MUTABLE_DATASET_H_
#define PIMINE_CORE_MUTABLE_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// Observer of one MutableDataset's mutations (DESIGN.md section 13). The
/// kNN paths, the k-means assignment filter and the serving layer
/// implement this to keep their device state (delta regions, tombstone
/// bitmaps, per-row offline terms) in lockstep with the host corpus.
///
/// Call ordering contract: the dataset mutates its own corpus FIRST, then
/// notifies listeners in attach order — a listener reading the corpus
/// (e.g. to re-measure statistics) always sees the post-mutation state.
class MutationListener {
 public:
  virtual ~MutationListener() = default;

  /// `rows` were appended to the corpus; their physical ids are
  /// [corpus.rows() - rows.rows(), corpus.rows()).
  virtual Status OnInsert(const FloatMatrix& rows) = 0;

  /// Physical rows `rows` were tombstoned (values stay in place until the
  /// next compaction).
  virtual Status OnDelete(std::span<const uint32_t> rows) = 0;

  /// The corpus was compacted: `live` lists the surviving OLD physical ids
  /// in ascending order; survivor live[i] now has physical id i.
  virtual Status OnCompact(const std::vector<uint32_t>& live) = 0;
};

/// Host-side coordinator of a mutable corpus. Holds the physical layout
/// the PIM engines mirror — base rows plus appended delta rows, with
/// tombstoned rows left in place until Compact() rewrites the matrix
/// densely. The FloatMatrix object address is stable for the dataset's
/// lifetime (only its contents grow/shrink), so engines and paths holding
/// `const FloatMatrix*` into it stay valid across mutations.
///
/// Not thread-safe: callers serialize mutations against queries and
/// against each other (the serving layer does this under its admission
/// lock).
class MutableDataset {
 public:
  explicit MutableDataset(FloatMatrix initial);

  /// The physical corpus: base + delta rows, tombstones in place.
  const FloatMatrix& corpus() const { return corpus_; }
  size_t rows() const { return corpus_.rows(); }
  size_t cols() const { return corpus_.cols(); }
  size_t live_rows() const { return corpus_.rows() - tombstone_count_; }
  size_t tombstoned_rows() const { return tombstone_count_; }
  bool tombstoned(size_t row) const { return tombstone_[row] != 0; }
  /// Fraction of physical rows currently tombstoned, in [0, 1] — the
  /// quantity the serve-side compaction watermark triggers on.
  double TombstoneFraction() const {
    return corpus_.rows() == 0
               ? 0.0
               : static_cast<double>(tombstone_count_) /
                     static_cast<double>(corpus_.rows());
  }
  /// Ascending physical ids of the live (non-tombstoned) rows.
  std::vector<uint32_t> LiveRows() const;
  /// Dense copy of the live rows in ascending physical order — the view a
  /// dense consumer (k-means, a reference engine) runs over.
  FloatMatrix LiveCorpus() const;

  /// Registers a listener (not owned; must outlive the dataset's use).
  void Attach(MutationListener* listener);

  /// Appends `rows` to the corpus, then notifies listeners. The rows must
  /// match the corpus dimensionality and be normalized into [0, 1].
  Status Insert(const FloatMatrix& rows);

  /// Tombstones physical row `row`, then notifies listeners. Fails with
  /// InvalidArgument when out of range or already tombstoned, and with
  /// FailedPrecondition when it would delete the last live row.
  Status Delete(size_t row);

  /// Rewrites the corpus densely (live rows only, order preserved), then
  /// notifies listeners with the surviving old physical ids. After the
  /// call physical ids are dense: row i is the i-th live row of the old
  /// corpus.
  Status Compact();

 private:
  FloatMatrix corpus_;
  std::vector<uint8_t> tombstone_;
  size_t tombstone_count_ = 0;
  std::vector<MutationListener*> listeners_;
};

/// One operation of a mutation trace (the --mutate_trace CLI grammar):
///   i:N     insert the next N rows of the insert stream
///   d:A     delete physical row A
///   d:A-B   delete physical rows A..B inclusive
///   c       compact
/// Operations are comma-separated, e.g. "i:256,d:0-127,c,i:64".
struct MutationOp {
  enum class Kind { kInsert, kDelete, kCompact };
  Kind kind = Kind::kCompact;
  uint32_t count = 0;  // kInsert: rows to take from the stream.
  uint32_t first = 0;  // kDelete: first physical row.
  uint32_t last = 0;   // kDelete: last physical row (== first for d:A).
};

/// Parses the trace grammar above. Fails with InvalidArgument on malformed
/// input (unknown op, missing argument, reversed range).
Result<std::vector<MutationOp>> ParseMutationTrace(std::string_view trace);

/// Replays `ops` against `dataset`, drawing insert rows from
/// `insert_stream` starting at `*stream_pos` (advanced past consumed
/// rows). Fails when the stream runs dry or any mutation fails.
Status ApplyMutationTrace(MutableDataset* dataset,
                          std::span<const MutationOp> ops,
                          const FloatMatrix& insert_stream,
                          size_t* stream_pos);

}  // namespace pimine

#endif  // PIMINE_CORE_MUTABLE_DATASET_H_
