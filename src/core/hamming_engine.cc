#include "core/hamming_engine.h"

#include <sstream>

#include "common/logging.h"
#include "core/pim_bounds.h"
#include "pim/crossbar_math.h"
#include "util/bits.h"

namespace pimine {

PimHammingEngine::PimHammingEngine(BitMatrix codes, const PimConfig& config)
    : codes_(std::move(codes)), config_(config), timing_(config) {}

Result<std::unique_ptr<PimHammingEngine>> PimHammingEngine::Build(
    const BitMatrix& codes, const PimConfig& config) {
  if (codes.rows() == 0 || codes.bits() == 0) {
    return Status::InvalidArgument("empty code matrix");
  }
  PIMINE_RETURN_IF_ERROR(config.Validate());
  // Codes + complements are two 1-bit-operand matrices (Theorem 4).
  const int64_t n = static_cast<int64_t>(codes.rows());
  const int64_t bits = static_cast<int64_t>(codes.bits());
  if (!FitsInPimArray(2 * n, /*operand_bits=*/1, bits, config)) {
    std::ostringstream os;
    os << "code matrix (" << n << " x " << bits
       << " bits, plus complements) exceeds the PIM array";
    return Status::CapacityExceeded(os.str());
  }
  auto engine = std::unique_ptr<PimHammingEngine>(
      new PimHammingEngine(codes, config));
  const int64_t ndata = NumDataCrossbars(2 * n, 1, bits, config.crossbar_dim,
                                         config.cell_bits) +
                        NumGatherCrossbars(2 * n, 1, bits,
                                           config.crossbar_dim,
                                           config.cell_bits);
  engine->offline_ns_ = engine->timing_.ProgramLatencyNs(
      static_cast<uint64_t>(ndata) * config.crossbar_dim);
  return engine;
}

Status PimHammingEngine::ComputeDistances(
    std::span<const uint64_t> query_words, std::vector<int32_t>* out) {
  PIMINE_CHECK(out != nullptr);
  if (query_words.size() != codes_.words_per_row()) {
    return Status::InvalidArgument("query code width mismatch");
  }
  const size_t n = codes_.rows();
  const int64_t d = static_cast<int64_t>(codes_.bits());
  out->resize(n);

  // Bits of the last word beyond `d` must be ignored in the complement dot.
  const size_t full_words = codes_.bits() / 64;
  const uint64_t tail_mask =
      (codes_.bits() % 64 == 0) ? 0 : ((1ULL << (codes_.bits() % 64)) - 1);

  for (size_t i = 0; i < n; ++i) {
    const auto row = codes_.row(i);
    // PIM batch 1: p.q = popcount(p AND q);
    // PIM batch 2: p~.q~ = popcount(NOT p AND NOT q) within d bits.
    // Functionally exact emulation of the 1-bit crossbar dot products.
    uint32_t code_dot = 0;
    uint32_t comp_dot = 0;
    for (size_t w = 0; w < full_words; ++w) {
      code_dot += static_cast<uint32_t>(PopCount(row[w] & query_words[w]));
      comp_dot += static_cast<uint32_t>(PopCount(~row[w] & ~query_words[w]));
    }
    if (tail_mask != 0) {
      const size_t w = full_words;
      code_dot += static_cast<uint32_t>(
          PopCount(row[w] & query_words[w] & tail_mask));
      comp_dot += static_cast<uint32_t>(
          PopCount(~row[w] & ~query_words[w] & tail_mask));
    }
    (*out)[i] = static_cast<int32_t>(HdPimCombine(code_dot, comp_dot, d));
  }

  // Two batch dot products (codes, complements) with 1-bit inputs.
  compute_ns_ += 2.0 * timing_.BatchDotLatencyNs(d, /*input_bits=*/1);
  result_bytes_ += n * sizeof(uint64_t);  // two 32-bit results per object.
  return Status::OK();
}

void PimHammingEngine::ResetOnlineStats() {
  compute_ns_ = 0.0;
  result_bytes_ = 0;
}

}  // namespace pimine
