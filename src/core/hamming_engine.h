#ifndef PIMINE_CORE_HAMMING_ENGINE_H_
#define PIMINE_CORE_HAMMING_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/bit_matrix.h"
#include "pim/pim_config.h"
#include "pim/timing.h"

namespace pimine {

/// PIM execution of Hamming distance on binary codes (Table 4):
///   HD(p, q) = d - p.q - p~.q~
/// where p~ is the bit complement. Both dot products are 1-bit-operand PIM
/// batches (codes in one crossbar group, complements in another); the host
/// receives two 32-bit results per object (64 bits of transfer, §VI-C
/// Fig. 14 discussion) and combines them in O(1).
///
/// Unlike the float engines this computes the *exact* distance — binary
/// codes are already non-negative integers, so no quantization bound is
/// needed (§V-B).
class PimHammingEngine {
 public:
  /// Programs the codes and their complements. Capacity check follows
  /// Theorem 4 with b = 1 (two copies: codes + complements).
  static Result<std::unique_ptr<PimHammingEngine>> Build(
      const BitMatrix& codes, const PimConfig& config = PimConfig());

  /// Exact Hamming distances of the query code against every object.
  /// `query_words` must have the codes' words_per_row length.
  Status ComputeDistances(std::span<const uint64_t> query_words,
                          std::vector<int32_t>* out);

  size_t num_objects() const { return codes_.rows(); }
  size_t code_bits() const { return codes_.bits(); }

  /// Modeled PIM time accumulated by ComputeDistances (two batches/query).
  double PimComputeNs() const { return compute_ns_; }
  /// Bytes of PIM results shipped to the host (8 per object per query).
  uint64_t ResultBytesToHost() const { return result_bytes_; }
  double OfflineNs() const { return offline_ns_; }
  void ResetOnlineStats();

 private:
  PimHammingEngine(BitMatrix codes, const PimConfig& config);

  BitMatrix codes_;
  PimConfig config_;
  PimTimingModel timing_;
  double offline_ns_ = 0.0;
  double compute_ns_ = 0.0;
  uint64_t result_bytes_ = 0;
};

}  // namespace pimine

#endif  // PIMINE_CORE_HAMMING_ENGINE_H_
