#include "core/pim_bounds.h"

#include "common/logging.h"
#include "sim/traffic.h"

namespace pimine {

double LbPimEdCombine(double phi_p, double phi_q, uint64_t floor_dot,
                      int64_t dims, double alpha) {
  // Host receives Phi(p) and the PIM result: 2 scalars + the cached Phi(q).
  traffic::CountRead(sizeof(double));
  traffic::CountPimResults(1);
  traffic::CountArithmetic(6);
  const double lb = (phi_p + phi_q - 2.0 * static_cast<double>(floor_dot) -
                     2.0 * static_cast<double>(dims)) /
                    (alpha * alpha);
  return lb;
}

double LbPimFnnCombine(double phi_p, double phi_q, uint64_t mean_dot,
                       uint64_t std_dot, int64_t num_segments,
                       int64_t segment_length, double alpha) {
  traffic::CountRead(sizeof(double));
  traffic::CountPimResults(2);
  traffic::CountArithmetic(9);
  const double inner = phi_p + phi_q - 2.0 * static_cast<double>(mean_dot) -
                       2.0 * static_cast<double>(std_dot) -
                       4.0 * static_cast<double>(num_segments);
  return static_cast<double>(segment_length) * inner / (alpha * alpha);
}

double LbPimSmCombine(double phi_p, double phi_q, uint64_t mean_dot,
                      int64_t num_segments, int64_t segment_length,
                      double alpha) {
  traffic::CountRead(sizeof(double));
  traffic::CountPimResults(1);
  traffic::CountArithmetic(7);
  const double inner = phi_p + phi_q - 2.0 * static_cast<double>(mean_dot) -
                       2.0 * static_cast<double>(num_segments);
  return static_cast<double>(segment_length) * inner / (alpha * alpha);
}

double UbPimDotCombine(uint64_t floor_dot, double sum_floor_p,
                       double sum_floor_q, int64_t dims, double alpha) {
  traffic::CountRead(2 * sizeof(double));
  traffic::CountPimResults(1);
  traffic::CountArithmetic(5);
  return (static_cast<double>(floor_dot) + sum_floor_p + sum_floor_q +
          static_cast<double>(dims)) /
         (alpha * alpha);
}

double UbPimCosine(double dot_upper_bound, double norm_p, double norm_q) {
  traffic::CountArithmetic(2);
  traffic::CountLongOps(1);
  const double denom = norm_p * norm_q;
  if (denom <= 0.0) return 0.0;
  return dot_upper_bound / denom;
}

double UbPimPearson(double dot_upper_bound, int64_t dims, double phi_b_p,
                    double phi_b_q, double phi_a_p, double phi_a_q) {
  traffic::CountArithmetic(4);
  traffic::CountLongOps(1);
  const double denom = phi_a_p * phi_a_q;
  if (denom <= 0.0) return 0.0;
  return (static_cast<double>(dims) * dot_upper_bound - phi_b_p * phi_b_q) /
         denom;
}

int64_t HdPimCombine(uint32_t code_dot, uint32_t complement_dot,
                     int64_t dims) {
  traffic::CountPimResults(1);  // two 32-bit results = one 64-bit load.
  traffic::CountArithmetic(2);
  const int64_t hd = dims - static_cast<int64_t>(code_dot) -
                     static_cast<int64_t>(complement_dot);
  PIMINE_DCHECK(hd >= 0 && hd <= dims);
  return hd;
}

}  // namespace pimine
