#ifndef PIMINE_CORE_PARTITIONED_ENGINE_H_
#define PIMINE_CORE_PARTITIONED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "core/quantize.h"
#include "data/matrix.h"
#include "pim/pim_device.h"

namespace pimine {

/// The paper's §VII future-work direction, implemented: when a dataset does
/// not fit the PIM array even after Theorem 4 compression (or when the
/// user wants full-dimensionality bounds regardless), split the objects
/// into partitions and re-program the crossbars between them.
///
/// Re-programming is the expensive, endurance-limited operation the paper
/// warns about (§V-C), so the engine amortizes it across a *batch* of
/// queries: program partition 1 -> run every query in the batch against it
/// -> program partition 2 -> ... Each batch therefore costs
/// `num_partitions` reprograms regardless of batch size, and per-cell write
/// endurance is tracked so callers can budget device lifetime.
///
/// Bounds are the direct Theorem 1 LB_PIM-ED at full dimensionality —
/// tighter than the compressed segment bounds, at the price of reprogram
/// latency and wear. `bench_ext_reprogram` quantifies the trade.
class PartitionedPimEngine {
 public:
  /// Builds the offline state. `data` rows must be in [0, 1]. The
  /// partition size is the largest row count whose full-dimensionality
  /// quantized matrix fits the PIM array.
  static Result<std::unique_ptr<PartitionedPimEngine>> Build(
      const FloatMatrix& data, const EngineOptions& options);

  /// Lower bounds on squared ED for every (query, object) pair.
  /// (*bounds)[q][i] <= SquaredEuclidean(data[i], queries[q]).
  /// One pass over the partitions per call; reprogram cost is amortized
  /// over the whole query batch.
  Status ComputeBoundsBatch(const FloatMatrix& queries,
                            std::vector<std::vector<double>>* bounds);

  int64_t num_partitions() const {
    return static_cast<int64_t>(partition_starts_.size());
  }
  int64_t partition_rows() const { return partition_rows_; }
  size_t num_objects() const { return data_->rows(); }

  /// Modeled PIM compute time (batch dot products) since construction.
  double PimComputeNs() const { return device_->stats().compute_ns; }
  /// Modeled reprogramming time spent so far (the §VII overhead).
  double ReprogramNs() const { return device_->stats().program_ns; }
  /// Full-array programming events so far (endurance proxy).
  uint64_t ProgrammingEvents() const {
    return device_->stats().programming_events;
  }
  double EnduranceRemainingFraction() const {
    return device_->EnduranceRemainingFraction();
  }

 private:
  PartitionedPimEngine(const FloatMatrix& data, const EngineOptions& options,
                       int64_t partition_rows);

  const FloatMatrix* data_;
  EngineOptions options_;
  Quantizer quantizer_;
  int64_t partition_rows_;
  std::vector<size_t> partition_starts_;
  std::vector<double> phi_;  // Theorem 1 Phi per object.
  std::unique_ptr<PimDevice> device_;
};

}  // namespace pimine

#endif  // PIMINE_CORE_PARTITIONED_ENGINE_H_
