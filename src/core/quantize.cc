#include "core/quantize.h"

#include <cmath>

#include "common/logging.h"

namespace pimine {

Quantizer::Quantizer(double alpha) : alpha_(alpha) {
  PIMINE_CHECK(alpha >= 1.0 && alpha <= 2e9)
      << "alpha out of range: " << alpha;
}

int32_t Quantizer::QuantizeValue(float v) const {
  PIMINE_DCHECK(v >= 0.0f && v <= 1.0f);
  return static_cast<int32_t>(std::floor(static_cast<double>(v) * alpha_));
}

void Quantizer::QuantizeRow(std::span<const float> in,
                            std::span<int32_t> out) const {
  PIMINE_CHECK(in.size() == out.size());
  for (size_t i = 0; i < in.size(); ++i) out[i] = QuantizeValue(in[i]);
}

IntMatrix Quantizer::Quantize(const FloatMatrix& normalized) const {
  IntMatrix out(normalized.rows(), normalized.cols());
  for (size_t i = 0; i < normalized.rows(); ++i) {
    QuantizeRow(normalized.row(i), out.mutable_row(i));
  }
  return out;
}

double Quantizer::PhiEd(std::span<const float> normalized_row) const {
  double sum_sq = 0.0;
  double sum_floor = 0.0;
  for (float v : normalized_row) {
    const double scaled = static_cast<double>(v) * alpha_;
    sum_sq += scaled * scaled;
    sum_floor += std::floor(scaled);
  }
  return sum_sq - 2.0 * sum_floor;
}

std::vector<double> Quantizer::PhiEdAll(const FloatMatrix& normalized) const {
  std::vector<double> out(normalized.rows());
  for (size_t i = 0; i < normalized.rows(); ++i) {
    out[i] = PhiEd(normalized.row(i));
  }
  return out;
}

double Quantizer::PhiFnn(std::span<const float> seg_means,
                         std::span<const float> seg_stds) const {
  PIMINE_CHECK(seg_means.size() == seg_stds.size());
  double acc = 0.0;
  for (size_t i = 0; i < seg_means.size(); ++i) {
    const double mu = static_cast<double>(seg_means[i]) * alpha_;
    const double sigma = static_cast<double>(seg_stds[i]) * alpha_;
    acc += mu * mu + sigma * sigma;
    acc -= 2.0 * std::floor(mu);
    acc -= 2.0 * std::floor(sigma);
  }
  return acc;
}

double Quantizer::PhiSm(std::span<const float> seg_means) const {
  double acc = 0.0;
  for (float v : seg_means) {
    const double mu = static_cast<double>(v) * alpha_;
    acc += mu * mu - 2.0 * std::floor(mu);
  }
  return acc;
}

double Quantizer::SumFloors(std::span<const float> normalized_row) const {
  double acc = 0.0;
  for (float v : normalized_row) {
    acc += std::floor(static_cast<double>(v) * alpha_);
  }
  return acc;
}

double LbPimEdErrorBound(int64_t dims, double alpha) {
  return 4.0 * static_cast<double>(dims) / alpha +
         2.0 * static_cast<double>(dims) / (alpha * alpha);
}

}  // namespace pimine
