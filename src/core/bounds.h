#ifndef PIMINE_CORE_BOUNDS_H_
#define PIMINE_CORE_BOUNDS_H_

#include <cstdint>
#include <span>

namespace pimine {

/// Classical distance bounds from Table 3 of the paper. All take the
/// dataset-side statistics precomputed offline; the query-side statistics
/// are computed once per query. Every function charges the data transfer it
/// causes to the thread-local TrafficCounters.
///
/// ED bounds are lower bounds on *squared* Euclidean distance (Table 2's
/// ED); UB_part is an upper bound on the dot product used by CS/PCC search.

/// LB_SM (Yi & Faloutsos): l * sum_i (mu(p_i) - mu(q_i))^2 over d0 segment
/// means of nominal length l.
double LbSm(std::span<const float> p_means, std::span<const float> q_means,
            int64_t segment_length);

/// LB_FNN (Hwang et al.): l * sum_i ((mu_p - mu_q)^2 + (sigma_p - sigma_q)^2).
double LbFnn(std::span<const float> p_means, std::span<const float> p_stds,
             std::span<const float> q_means, std::span<const float> q_stds,
             int64_t segment_length);

/// LB_OST (orthogonal-search-tree bound): exact partial distance on the
/// first d0 dimensions plus the difference of suffix norms:
///   sum_{i<=d0} (p_i-q_i)^2 + (|p_suffix| - |q_suffix|)^2.
/// `p_suffix_norm` / `q_suffix_norm` are sqrt(sum_{i>d0} x_i^2), precomputed.
double LbOst(std::span<const float> p, std::span<const float> q, int64_t d0,
             double p_suffix_norm, double q_suffix_norm);

/// UB_part (LEMP): upper bound on p.q — exact partial dot product on the
/// first d0 dimensions plus the Cauchy-Schwarz bound on the suffix:
///   sum_{i<=d0} p_i q_i + |p_suffix| * |q_suffix|.
double UbPartDot(std::span<const float> p, std::span<const float> q,
                 int64_t d0, double p_suffix_norm, double q_suffix_norm);

/// Suffix L2 norm sqrt(sum_{i >= d0} x_i^2) — the offline precomputation for
/// LB_OST / UB_part.
double SuffixNorm(std::span<const float> vec, int64_t d0);

}  // namespace pimine

#endif  // PIMINE_CORE_BOUNDS_H_
