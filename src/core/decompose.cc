#include "core/decompose.h"

#include <cmath>

namespace pimine {

double EdDecomposition::Phi(std::span<const float> x) {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return acc;
}

double CsDecomposition::Phi(std::span<const float> x) {
  return std::sqrt(EdDecomposition::Phi(x));
}

PccDecomposition::Phi PccDecomposition::ComputePhi(std::span<const float> x) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float v : x) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  Phi out;
  out.b = sum;
  const double inner = static_cast<double>(x.size()) * sum_sq - sum * sum;
  out.a = inner > 0.0 ? std::sqrt(inner) : 0.0;
  return out;
}

double FnnDecomposition::Phi(std::span<const float> seg_means,
                             std::span<const float> seg_stds,
                             int64_t segment_length) {
  double acc = 0.0;
  for (size_t i = 0; i < seg_means.size(); ++i) {
    acc += static_cast<double>(seg_means[i]) * seg_means[i] +
           static_cast<double>(seg_stds[i]) * seg_stds[i];
  }
  return static_cast<double>(segment_length) * acc;
}

}  // namespace pimine
