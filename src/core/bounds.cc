#include "core/bounds.h"

#include <cmath>

#include "common/logging.h"
#include "sim/traffic.h"

namespace pimine {

double LbSm(std::span<const float> p_means, std::span<const float> q_means,
            int64_t segment_length) {
  PIMINE_DCHECK(p_means.size() == q_means.size());
  double acc = 0.0;
  for (size_t i = 0; i < p_means.size(); ++i) {
    const double diff = static_cast<double>(p_means[i]) - q_means[i];
    acc += diff * diff;
  }
  traffic::CountRead(p_means.size() * sizeof(float));
  traffic::CountArithmetic(3 * p_means.size() + 1);
  return static_cast<double>(segment_length) * acc;
}

double LbFnn(std::span<const float> p_means, std::span<const float> p_stds,
             std::span<const float> q_means, std::span<const float> q_stds,
             int64_t segment_length) {
  PIMINE_DCHECK(p_means.size() == q_means.size() &&
                p_stds.size() == q_stds.size() &&
                p_means.size() == p_stds.size());
  double acc = 0.0;
  for (size_t i = 0; i < p_means.size(); ++i) {
    const double dm = static_cast<double>(p_means[i]) - q_means[i];
    const double ds = static_cast<double>(p_stds[i]) - q_stds[i];
    acc += dm * dm + ds * ds;
  }
  traffic::CountRead(2 * p_means.size() * sizeof(float));
  traffic::CountArithmetic(6 * p_means.size() + 1);
  return static_cast<double>(segment_length) * acc;
}

double LbOst(std::span<const float> p, std::span<const float> q, int64_t d0,
             double p_suffix_norm, double q_suffix_norm) {
  PIMINE_DCHECK(p.size() == q.size());
  PIMINE_DCHECK(d0 >= 0 && static_cast<size_t>(d0) <= p.size());
  double acc = 0.0;
  for (int64_t i = 0; i < d0; ++i) {
    const double diff = static_cast<double>(p[i]) - q[i];
    acc += diff * diff;
  }
  const double norm_diff = p_suffix_norm - q_suffix_norm;
  traffic::CountRead((d0 + 1) * sizeof(float));
  traffic::CountArithmetic(3 * d0 + 3);
  return acc + norm_diff * norm_diff;
}

double UbPartDot(std::span<const float> p, std::span<const float> q,
                 int64_t d0, double p_suffix_norm, double q_suffix_norm) {
  PIMINE_DCHECK(p.size() == q.size());
  PIMINE_DCHECK(d0 >= 0 && static_cast<size_t>(d0) <= p.size());
  double acc = 0.0;
  for (int64_t i = 0; i < d0; ++i) {
    acc += static_cast<double>(p[i]) * q[i];
  }
  traffic::CountRead((d0 + 1) * sizeof(float));
  traffic::CountArithmetic(2 * d0 + 2);
  return acc + p_suffix_norm * q_suffix_norm;
}

double SuffixNorm(std::span<const float> vec, int64_t d0) {
  PIMINE_DCHECK(d0 >= 0 && static_cast<size_t>(d0) <= vec.size());
  double acc = 0.0;
  for (size_t i = static_cast<size_t>(d0); i < vec.size(); ++i) {
    acc += static_cast<double>(vec[i]) * vec[i];
  }
  return std::sqrt(acc);
}

}  // namespace pimine
