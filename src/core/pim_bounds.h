#ifndef PIMINE_CORE_PIM_BOUNDS_H_
#define PIMINE_CORE_PIM_BOUNDS_H_

#include <cstdint>

namespace pimine {

/// PIM-aware bound combiners — the G functions of Eq. 3 for the bounds of
/// §V-B. Each takes the offline term Phi(p), the once-per-query term
/// Phi(q), and the dot-product(s) computed on PIM, and returns the bound in
/// O(1) host work (the whole point: 3*b bits of transfer instead of d*b).
///
/// All dot products arrive as the PIM device produces them: uint64 values
/// (least-significant-64-bit truncation). With the paper's alpha = 1e6 and
/// d <= 4096 no truncation actually occurs (values stay below 2^52).

/// Theorem 1: lower bound on squared ED.
///   LB = (Phi(p) + Phi(q) - 2*dot - 2d) / alpha^2.
double LbPimEdCombine(double phi_p, double phi_q, uint64_t floor_dot,
                      int64_t dims, double alpha);

/// Theorem 2: lower bound on squared ED via segment statistics.
///   LB = l/alpha^2 * (Phi(p-hat) + Phi(q-hat) - 2*mean_dot - 2*std_dot
///                     - 4*d0).
double LbPimFnnCombine(double phi_p, double phi_q, uint64_t mean_dot,
                       uint64_t std_dot, int64_t num_segments,
                       int64_t segment_length, double alpha);

/// Means-only segment bound (the PIM-aware form of LB_SM): lower bound on
/// squared ED using only segment means.
///   LB = l/alpha^2 * (Phi(p) + Phi(q) - 2*mean_dot - 2*d0),
/// with Phi(x) = sum mu^2 - 2*sum floor(mu) over scaled segment means.
double LbPimSmCombine(double phi_p, double phi_q, uint64_t mean_dot,
                      int64_t num_segments, int64_t segment_length,
                      double alpha);

/// Upper bound on the dot product p.q of the original (normalized) vectors:
///   p.q <= (floor_dot + sum_floor_p + sum_floor_q + d) / alpha^2.
/// Feeds the CS/PCC upper bounds below.
double UbPimDotCombine(uint64_t floor_dot, double sum_floor_p,
                       double sum_floor_q, int64_t dims, double alpha);

/// Upper bound on cosine similarity given the dot-product upper bound and
/// the exact norms (Table 4: the norms are the offline Phi terms).
double UbPimCosine(double dot_upper_bound, double norm_p, double norm_q);

/// Upper bound on Pearson correlation (Table 4 decomposition):
///   PCC = (d*p.q - sum_p*sum_q) / (phi_a_p * phi_a_q),
/// with phi_a = sqrt(d*sum(x^2) - (sum x)^2), phi_b = sum x.
double UbPimPearson(double dot_upper_bound, int64_t dims, double phi_b_p,
                    double phi_b_q, double phi_a_p, double phi_a_q);

/// Exact Hamming distance from the two PIM dot products of Table 4:
///   HD = d - p.q - p~.q~  (codes and complemented codes).
/// PIM results are truncated to 32 bits for HD (§VI-B).
int64_t HdPimCombine(uint32_t code_dot, uint32_t complement_dot,
                     int64_t dims);

}  // namespace pimine

#endif  // PIMINE_CORE_PIM_BOUNDS_H_
