#ifndef PIMINE_CORE_ENGINE_H_
#define PIMINE_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/memory_planner.h"
#include "core/quantize.h"
#include "core/similarity.h"
#include "data/matrix.h"
#include "pim/fleet.h"
#include "pim/pim_config.h"
#include "pim/pim_device.h"
#include "util/parallel.h"

namespace pimine {

/// How the engine turns a similarity function into a PIM-aware bound.
enum class EngineMode {
  /// Theorem 1: LB_PIM-ED on the full (quantized) vectors.
  kDirectEd,
  /// Theorem 2: LB_PIM-FNN on segment means + stddevs (two PIM matrices).
  kSegmentFnn,
  /// Means-only segment bound (PIM-aware LB_SM; one PIM matrix).
  kSegmentSm,
  /// Upper bound on cosine similarity.
  kCosine,
  /// Upper bound on Pearson correlation.
  kPearson,
};

std::string_view EngineModeName(EngineMode mode);

/// Build-time knobs for PimEngine.
struct EngineOptions {
  /// Scaling factor of Eq. 5; the paper's default is 1e6 (§VI-B).
  double alpha = 1e6;
  /// PIM hardware description.
  PimConfig pim_config;
  /// Bit width of crossbar operands (the paper keeps 32, §VI-B).
  int operand_bits = 32;
  /// Bound family. ED queries default to automatic selection: direct when
  /// the dataset fits at full dimensionality, segment-FNN otherwise
  /// (Theorem 4 chooses s).
  enum class Bound { kAuto, kDirectEd, kSegmentFnn, kSegmentSm };
  Bound bound = Bound::kAuto;
  /// For segment modes: use exactly this many segments (0 = let Theorem 4
  /// maximize s).
  int64_t force_segments = 0;
  /// ReRAM fault injection for the engine's device(s); disabled by default
  /// (bit-identical to fault-free behaviour). A kSegmentFnn second device
  /// draws from a decorrelated seed.
  FaultConfig fault_config;
  /// Recovery policy the device(s) apply to checksum-flagged results.
  RecoveryPolicy recovery;
  /// Multi-device sharding (consumed by ShardedPimEngine; a plain PimEngine
  /// ignores it and always runs single-device). shard.shards == 1 keeps the
  /// exact single-device behaviour.
  ShardOptions shard;
};

/// The paper's framework in one object (§V): offline, it normalizes the
/// roles — quantize the dataset (Eq. 5-6), compress it to the Theorem 4
/// dimensionality if needed (§V-C), program the PIM array, and pre-compute
/// the Phi terms of the PIM-aware (bound) function; online, each query
/// costs one or two PIM batch dot-products plus O(1) host work per
/// candidate, transferring 3*b bits instead of d*b (Fig. 8).
///
/// For ED the produced values are *lower bounds on squared ED*; for CS/PCC
/// they are *upper bounds on similarity*. Guarantees (tested as invariants):
///   ED modes:  BoundFor(h, i) <= SquaredEuclidean(data[i], q)
///   CS mode:   BoundFor(h, i) >= CosineSimilarity(data[i], q)
///   PCC mode:  BoundFor(h, i) >= PearsonCorrelation(data[i], q)
///
/// Input data and queries must already be normalized into [0, 1] per
/// dimension (use MinMaxScaler); Build rejects out-of-range data.
class PimEngine {
 public:
  /// Result of one PIM batch for one query: dot products for every object
  /// plus the query-side scalars, enabling lazy per-object combines (the
  /// host loads only the PIM results it actually inspects).
  struct QueryHandle {
    std::vector<uint64_t> dots1;  // floors / segment-mean dots.
    std::vector<uint64_t> dots2;  // segment-std dots (kSegmentFnn only).
    double phi_q = 0.0;
    double sum_floor_q = 0.0;  // CS/PCC.
    double norm_q = 0.0;       // CS: |q|;  PCC: phi_a(q).
    double phi_b_q = 0.0;      // PCC.
    /// Per-result fault flags (VerifyMode::kBoundSlack only; empty when
    /// every result verified clean). BoundFor returns the trivial
    /// worst-case bound for flagged results, keeping pruning admissible.
    std::vector<uint8_t> suspect1;
    std::vector<uint8_t> suspect2;  // kSegmentFnn second device.
  };

  /// Result of one *batched* PIM operation covering `num_queries` queries:
  /// one shared dot-product buffer (query q's results occupy
  /// dots1[q*stride, (q+1)*stride)) plus per-query scalar terms. Produced
  /// by RunQueryBatch; consumed through BoundFor(batch, query, index).
  /// Bound values are bit-identical to running each query through
  /// RunQuery/BoundFor on its own.
  struct QueryHandleBatch {
    size_t num_queries = 0;
    size_t stride = 0;            // == num_objects().
    std::vector<uint64_t> dots1;  // num_queries * stride values.
    std::vector<uint64_t> dots2;  // kSegmentFnn only.
    // One entry per query; only the mode-relevant vectors are meaningful.
    std::vector<double> phi_q;
    std::vector<double> sum_floor_q;  // CS/PCC.
    std::vector<double> norm_q;       // CS: |q|;  PCC: phi_a(q).
    std::vector<double> phi_b_q;      // PCC.
    /// Per-result fault flags, laid out like dots1/dots2 (kBoundSlack only;
    /// empty when every result verified clean).
    std::vector<uint8_t> suspect1;
    std::vector<uint8_t> suspect2;
  };

  /// Reusable per-call working memory for RunQuery / RunQueryBatch.
  /// Engines hold no mutable query state, so any number of host threads
  /// may run queries concurrently, each with its own scratch.
  struct QueryScratch {
    std::vector<int32_t> ints;
    std::vector<int32_t> ints2;  // RunQueryBatch, kSegmentFnn: std inputs.
    std::vector<float> means;
    std::vector<float> stds;
  };

  /// Builds the offline state: plans the layout (Theorem 4), programs the
  /// PIM array, and pre-computes Phi for every object. `data` rows must be
  /// in [0, 1].
  static Result<std::unique_ptr<PimEngine>> Build(const FloatMatrix& data,
                                                  Distance distance,
                                                  const EngineOptions& options);

  /// Executes the PIM batch(es) for `query` (same dimensionality as the
  /// data, values in [0, 1]). Thread-safe; allocates scratch internally.
  Result<QueryHandle> RunQuery(std::span<const float> query) const;

  /// As above with caller-provided scratch — hot loops keep one
  /// QueryScratch per worker thread to avoid per-query allocation.
  Result<QueryHandle> RunQuery(std::span<const float> query,
                               QueryScratch* scratch) const;

  /// Executes ONE batched PIM operation for `num_queries` queries packed
  /// row-major in `queries` (num_queries * dims() values, each row a valid
  /// RunQuery input). The whole batch is quantized in one pass and matched
  /// by a single PimDevice::DotProductBatch per device, so the device
  /// charges one batch_op (and the pipelined batch latency) instead of
  /// num_queries separate operations. Bounds derived from the returned
  /// handle are bit-identical to per-query RunQuery, and all modeled stats
  /// except batch_ops / queries_per_batch / pipelined_ns are too.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries,
                                         QueryScratch* scratch) const;

  /// As above, allocating scratch internally.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries) const;

  /// Reusing variant: fills a caller-owned handle instead of returning a
  /// fresh one, so hot dispatch loops (the serving scheduler) keep one
  /// QueryHandleBatch per worker and successive batches reuse its buffers —
  /// no per-dispatch allocation once the vectors reach steady-state
  /// capacity. Results and stats are identical to the by-value overload.
  Status RunQueryBatch(std::span<const float> queries, size_t num_queries,
                       QueryScratch* scratch, QueryHandleBatch* batch) const;

  /// Host half of RunQueryBatch: validates the queries, fills the batch's
  /// per-query scalar terms, and quantizes every query into
  /// scratch->ints/ints2 (the device operands), charging the host-side
  /// quantize traffic and spans exactly once. RunQueryBatch ==
  /// PrepareBatch + DeviceBatch; the fleet layer calls PrepareBatch once
  /// and fans the prepared operands out to every shard, so the query-side
  /// work is never duplicated per shard.
  Status PrepareBatch(std::span<const float> queries, size_t num_queries,
                      QueryScratch* scratch, QueryHandleBatch* batch) const;

  /// Device half of RunQueryBatch: matches the operands PrepareBatch left
  /// in `scratch` (from this engine or a geometry-identical sibling — the
  /// fleet prepares once on one shard) against this engine's programmed
  /// dataset, sets batch->stride to this engine's num_objects(), and fills
  /// dots1/dots2 (+ suspect flags). `emit_query_spans` = false suppresses
  /// the per-query pim_dot trace spans; the fleet emits one serial-
  /// equivalent set itself instead of M duplicates.
  Status DeviceBatch(const QueryScratch& scratch, size_t num_queries,
                     QueryHandleBatch* batch,
                     bool emit_query_spans = true) const;

  /// Fail-over substitute for DeviceBatch: computes the same exact dot
  /// products on the host from the programmed operands
  /// (PimDevice::HostRecomputeBatch), bypassing the device fault model.
  /// Results are bit-identical to a fault-free DeviceBatch with empty
  /// suspect vectors; only fault-escalation accounting is charged.
  Status HostRecomputeBatch(const QueryScratch& scratch, size_t num_queries,
                            QueryHandleBatch* batch) const;

  /// Degraded-mode substitute for DeviceBatch when no device path is
  /// reachable and the policy is to shed rather than stall: fills the
  /// batch with every result flagged suspect, so BoundFor returns the
  /// trivial admissible bound (0 for the ED family, 1 for CS/PCC) and the
  /// host refine stage still produces exact results — at host-exact cost
  /// for this engine's candidates (exact-after-refine, never wrong). No
  /// device or transfer accounting is charged: nothing moved.
  Status SlackFillBatch(size_t num_queries, QueryHandleBatch* batch) const;

  /// Appends `rows` (same dimensionality, values in [0, 1]) to the engine:
  /// quantizes them per the engine's mode, programs the device delta
  /// region(s) incrementally (ProgramLatencyNs per appended row), and
  /// extends the per-object offline terms. Appended objects take physical
  /// indices [num_objects(), num_objects() + rows.rows()). Bounds for the
  /// grown engine are bit-identical to an engine built from scratch on the
  /// merged dataset: quantization, segment stats and Phi terms are all
  /// per-row computations. Not safe concurrently with in-flight queries.
  Status AppendRows(const FloatMatrix& rows);

  /// Tombstones object `index`: its bound becomes PruneBound() (sorts
  /// last, never refined), so query results are bit-identical to an engine
  /// that never held the row — while the physical crossbar row keeps
  /// computing (deleting costs zero device time until compaction).
  Status DeleteRow(size_t index);

  /// True when `index` is tombstoned.
  bool IsDeleted(size_t index) const { return device1_->tombstoned(index); }
  /// Objects that still count (num_objects() minus tombstones).
  size_t live_objects() const {
    return num_objects_ - device1_->tombstoned_rows();
  }
  /// Rows appended since the last full (re)program / compaction.
  size_t delta_objects() const { return device1_->delta_rows(); }

  /// Rewrites base + delta − tombstones into a fresh base on every device,
  /// charged at full program cost (the background compaction pass).
  /// `live_out` (optional) receives the surviving old physical indices in
  /// ascending order — new physical index i held old index (*live_out)[i].
  /// Post-compaction state is bit-identical to an engine freshly built on
  /// the surviving rows.
  Status Compact(std::vector<uint32_t>* live_out = nullptr);

  /// The admissible never-refine bound substituted for tombstoned rows:
  /// +inf for the ED family (sorts last under minimize), -inf for CS/PCC
  /// (sorts last once the search negates for maximize).
  double PruneBound() const;

  /// Lazy combine for object `index`: O(1) host work, 3*b bits of transfer.
  double BoundFor(const QueryHandle& handle, size_t index) const;

  /// Batched-handle combine: the bound for `batch` query `query` against
  /// object `index`. Bit-identical to BoundFor(RunQuery(that query), index).
  double BoundFor(const QueryHandleBatch& batch, size_t query,
                  size_t index) const;

  /// Convenience: RunQuery + BoundFor for every object. The combination
  /// loop is spread across `policy.num_threads` workers in blocks of
  /// `policy.block_size`; bounds and traffic totals are identical for any
  /// policy (each bound is an independent O(1) combine).
  Status ComputeBounds(std::span<const float> query,
                       std::vector<double>* bounds,
                       const ExecPolicy& policy = ExecPolicy()) const;

  EngineMode mode() const { return mode_; }
  const MemoryPlan& plan() const { return plan_; }
  size_t num_objects() const { return num_objects_; }
  size_t dims() const { return dims_; }
  int64_t num_segments() const { return num_segments_; }
  int64_t segment_length() const { return segment_length_; }
  double alpha() const { return quantizer_.alpha(); }

  /// Per-candidate data-transfer cost of this bound in bits (the T_cost(B)
  /// input to the Eq. 13 plan optimizer): 3 operands of b bits.
  double TransferBitsPerCandidate() const { return 3.0 * operand_bits_; }

  /// Modeled PIM-side time accumulated by RunQuery calls (NVSim role).
  /// Serial-equivalent: invariant under device batching.
  double PimComputeNs() const;
  /// Serial-equivalent modeled device time one query costs this engine
  /// (device1 + device2 when present). Invariant across device batching
  /// and host threading — the per-query figure observability spans charge.
  double SerialDeviceNsPerQuery() const;
  /// Modeled device-occupancy time with batch pipelining; equals
  /// PimComputeNs() bit-for-bit when every operation carried one query.
  double PimPipelinedNs() const;
  /// Modeled pipelined occupancy one RunQueryBatch of `num_queries` queries
  /// would charge (device1 + device2 when present). Pure — the virtual-
  /// clock service time the serving scheduler charges per dispatch.
  double ModeledBatchNs(size_t num_queries) const;
  /// Fault-injection and recovery accounting summed over the engine's
  /// device(s). All-zero when options.fault_config is disabled.
  FaultStats FaultStatsTotal() const;
  /// Modeled offline time: crossbar programming + Phi storage.
  double OfflineNs() const { return offline_ns_; }
  /// Bytes written during the offline stage (programming + Phi terms).
  uint64_t OfflineBytesWritten() const { return offline_bytes_written_; }
  void ResetOnlineStats();

  /// Device access for inspection/tests. `device2` is non-null only in
  /// kSegmentFnn mode.
  const PimDevice& device1() const { return *device1_; }
  const PimDevice* device2() const { return device2_.get(); }

 private:
  PimEngine(EngineMode mode, const EngineOptions& options);

  Status BuildDirectEd(const FloatMatrix& data);
  Status BuildSegment(const FloatMatrix& data, bool with_stds);
  Status BuildDotUpper(const FloatMatrix& data, bool pearson);

  Status CheckQuery(std::span<const float> query) const;

  /// Constructs device1_/device2_ honoring the fault options; the second
  /// device's fault seed is decorrelated from the first's.
  std::unique_ptr<PimDevice> MakeDevice(bool second) const;

  /// Worst-case admissible value substituted for suspect results: 0 for the
  /// ED family (a squared distance is never negative), 1 for CS/PCC (a
  /// cosine/correlation never exceeds 1).
  double TrivialBound() const;

  /// Mode dispatch shared by both BoundFor overloads: combines one
  /// object's offline terms with one query's dot products and scalars.
  double CombineBound(size_t index, uint64_t dot1, uint64_t dot2,
                      double phi_q, double sum_floor_q, double norm_q,
                      double phi_b_q) const;

  EngineMode mode_;
  EngineOptions options_;
  Quantizer quantizer_;
  int operand_bits_;
  MemoryPlan plan_;
  size_t num_objects_ = 0;
  size_t dims_ = 0;
  int64_t num_segments_ = 0;
  int64_t segment_length_ = 1;

  std::unique_ptr<PimDevice> device1_;
  std::unique_ptr<PimDevice> device2_;

  // Per-object offline terms (meaning depends on mode).
  std::vector<double> phi_;        // PhiEd / PhiFnn / PhiSm.
  std::vector<double> sum_floor_;  // CS/PCC.
  std::vector<double> norm_;       // CS: |p|;  PCC: phi_a(p).
  std::vector<double> phi_b_;      // PCC.

  double offline_ns_ = 0.0;
  uint64_t offline_bytes_written_ = 0;
};

}  // namespace pimine

#endif  // PIMINE_CORE_ENGINE_H_
