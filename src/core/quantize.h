#ifndef PIMINE_CORE_QUANTIZE_H_
#define PIMINE_CORE_QUANTIZE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/matrix.h"

namespace pimine {

/// §V-B quantization (Eq. 5-6): values normalized into [0, 1] are scaled by
/// alpha and truncated to their integer part, producing the non-negative
/// integer vectors ReRAM crossbars require. The paper's default scaling
/// factor is alpha = 1e6 (§VI-B); Theorem 3 bounds the error this induces.
class Quantizer {
 public:
  explicit Quantizer(double alpha = 1e6);

  double alpha() const { return alpha_; }

  /// floor(alpha * v) for one value. Precondition: v in [0, 1].
  int32_t QuantizeValue(float v) const;

  /// Quantizes one normalized row into `out`.
  void QuantizeRow(std::span<const float> in, std::span<int32_t> out) const;

  /// Quantizes a whole normalized dataset.
  IntMatrix Quantize(const FloatMatrix& normalized) const;

  /// Phi(p-bar) of Theorem 1 for one normalized row:
  ///   sum_i (alpha*p_i)^2 - 2 * sum_i floor(alpha*p_i).
  double PhiEd(std::span<const float> normalized_row) const;

  /// Phi(p-bar) for every row.
  std::vector<double> PhiEdAll(const FloatMatrix& normalized) const;

  /// Phi(p-hat) of Theorem 2 for one vector's scaled segment statistics:
  ///   sum mu^2 + sum sigma^2 - 2*sum floor(mu) - 2*sum floor(sigma),
  /// where mu/sigma are the *scaled* (by alpha) segment stats. Pass the
  /// unscaled stats; scaling happens here.
  double PhiFnn(std::span<const float> seg_means,
                std::span<const float> seg_stds) const;

  /// Phi for the means-only segment bound (PIM-aware LB_SM):
  ///   sum mu^2 - 2*sum floor(mu) over the *scaled* segment means.
  double PhiSm(std::span<const float> seg_means) const;

  /// sum_i floor(alpha * p_i) — the offline term of the CS/PCC dot-product
  /// upper bound.
  double SumFloors(std::span<const float> normalized_row) const;

 private:
  double alpha_;
};

/// Theorem 3: upper bound on LB_PIM-ED's gap to the exact squared ED.
double LbPimEdErrorBound(int64_t dims, double alpha);

}  // namespace pimine

#endif  // PIMINE_CORE_QUANTIZE_H_
