#ifndef PIMINE_CORE_MEMORY_PLANNER_H_
#define PIMINE_CORE_MEMORY_PLANNER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "data/matrix.h"
#include "pim/pim_config.h"

namespace pimine {

/// Outcome of Theorem 4 planning for a dataset on a given PIM array.
struct MemoryPlan {
  /// Compressed dimensionality s (== original dim when no compression is
  /// needed).
  int64_t s = 0;
  /// Matrices that must be programmed (1 for direct floors; 2 for the
  /// FNN-style mean+std pair).
  int copies = 1;
  /// Crossbar demand at s (Eq. 12), including all copies.
  int64_t data_crossbars = 0;
  int64_t gather_crossbars = 0;
  /// True when s < original dimensionality.
  bool compressed = false;

  std::string ToString() const;
};

/// §V-C: chooses the maximum compressed dimensionality s such that `copies`
/// matrices of N s-dimensional b-bit vectors fit in the PIM array
/// (Theorem 4). Fails with CapacityExceeded when even s=1 does not fit.
Result<MemoryPlan> PlanPimLayout(int64_t n, int64_t original_dim,
                                 int operand_bits, int copies,
                                 const PimConfig& config);

/// Fig. 10 compression: reduces each row of `data` from d to s dimensions
/// by per-segment means (the dimensionality-reduction technique the bound
/// functions already use).
FloatMatrix CompressBySegmentMeans(const FloatMatrix& data, int64_t s);

/// Scales the PIM array size so that `scaled_n` objects exercise the same
/// capacity pressure as `paper_n` objects did on the paper's 131072-crossbar
/// array. This is how the bench harness reproduces the paper's compressed
/// dimensionalities (s=105 on MSD etc.) with scaled-down datasets.
PimConfig ScalePimArrayForDataset(int64_t paper_n, int64_t scaled_n,
                                  const PimConfig& base);

}  // namespace pimine

#endif  // PIMINE_CORE_MEMORY_PLANNER_H_
