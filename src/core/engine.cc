#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "core/decompose.h"
#include "core/pim_bounds.h"
#include "core/segments.h"
#include "obs/obs.h"
#include "sim/traffic.h"

namespace pimine {
namespace {

Status CheckUnitRange(const FloatMatrix& data) {
  for (size_t i = 0; i < data.rows(); ++i) {
    for (float v : data.row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument(
            "data must be normalized into [0, 1]; use MinMaxScaler");
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string_view EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kDirectEd:
      return "LB_PIM-ED";
    case EngineMode::kSegmentFnn:
      return "LB_PIM-FNN";
    case EngineMode::kSegmentSm:
      return "LB_PIM-SM";
    case EngineMode::kCosine:
      return "UB_PIM-CS";
    case EngineMode::kPearson:
      return "UB_PIM-PCC";
  }
  return "?";
}

PimEngine::PimEngine(EngineMode mode, const EngineOptions& options)
    : mode_(mode),
      options_(options),
      quantizer_(options.alpha),
      operand_bits_(options.operand_bits) {}

Result<std::unique_ptr<PimEngine>> PimEngine::Build(
    const FloatMatrix& data, Distance distance,
    const EngineOptions& options) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot build engine on empty data");
  }
  if (distance == Distance::kHamming) {
    return Status::InvalidArgument(
        "use PimHammingEngine for binary-code workloads");
  }
  PIMINE_RETURN_IF_ERROR(CheckUnitRange(data));

  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t d = static_cast<int64_t>(data.cols());

  if (distance == Distance::kCosine || distance == Distance::kPearson) {
    if (options.bound != EngineOptions::Bound::kAuto) {
      return Status::InvalidArgument(
          "CS/PCC engines only support the automatic bound");
    }
    PIMINE_ASSIGN_OR_RETURN(MemoryPlan plan,
                            PlanPimLayout(n, d, options.operand_bits, 1,
                                          options.pim_config));
    if (plan.compressed) {
      return Status::CapacityExceeded(
          "CS/PCC require the full-dimensionality dataset on PIM; "
          "enlarge the PIM array");
    }
    auto engine = std::unique_ptr<PimEngine>(new PimEngine(
        distance == Distance::kCosine ? EngineMode::kCosine
                                      : EngineMode::kPearson,
        options));
    engine->plan_ = plan;
    PIMINE_RETURN_IF_ERROR(engine->BuildDotUpper(
        data, /*pearson=*/distance == Distance::kPearson));
    return engine;
  }

  // Euclidean family: pick the bound.
  EngineOptions::Bound bound = options.bound;
  MemoryPlan plan;
  if (bound == EngineOptions::Bound::kAuto) {
    PIMINE_ASSIGN_OR_RETURN(plan, PlanPimLayout(n, d, options.operand_bits, 1,
                                                options.pim_config));
    bound = plan.compressed ? EngineOptions::Bound::kSegmentFnn
                            : EngineOptions::Bound::kDirectEd;
  }

  switch (bound) {
    case EngineOptions::Bound::kDirectEd: {
      PIMINE_ASSIGN_OR_RETURN(plan, PlanPimLayout(n, d, options.operand_bits,
                                                  1, options.pim_config));
      if (plan.compressed) {
        return Status::CapacityExceeded(
            "full-dimensionality LB_PIM-ED does not fit; use a segment "
            "bound");
      }
      auto engine = std::unique_ptr<PimEngine>(
          new PimEngine(EngineMode::kDirectEd, options));
      engine->plan_ = plan;
      PIMINE_RETURN_IF_ERROR(engine->BuildDirectEd(data));
      return engine;
    }
    case EngineOptions::Bound::kSegmentFnn:
    case EngineOptions::Bound::kSegmentSm: {
      const bool with_stds = bound == EngineOptions::Bound::kSegmentFnn;
      const int copies = with_stds ? 2 : 1;
      PIMINE_ASSIGN_OR_RETURN(plan, PlanPimLayout(n, d, options.operand_bits,
                                                  copies, options.pim_config));
      // Beyond d/4 segments the bound gains little tightness (segments of
      // fewer than 4 values) while the crossbar cost keeps growing, so the
      // automatic choice caps Theorem 4's maximum there — matching the
      // paper's picks (s=105 on MSD, d=420).
      int64_t s = std::min(plan.s, std::max<int64_t>(1, d / 4));
      if (options.force_segments > 0) {
        if (options.force_segments > plan.s) {
          return Status::CapacityExceeded(
              "forced segment count exceeds the Theorem 4 maximum");
        }
        s = options.force_segments;
      }
      auto engine = std::unique_ptr<PimEngine>(new PimEngine(
          with_stds ? EngineMode::kSegmentFnn : EngineMode::kSegmentSm,
          options));
      plan.s = s;
      plan.compressed = s < d;
      engine->plan_ = plan;
      engine->num_segments_ = s;
      engine->segment_length_ = SegmentLength(d, s);
      PIMINE_RETURN_IF_ERROR(engine->BuildSegment(data, with_stds));
      return engine;
    }
    case EngineOptions::Bound::kAuto:
      break;
  }
  return Status::Internal("unreachable engine bound selection");
}

std::unique_ptr<PimDevice> PimEngine::MakeDevice(bool second) const {
  FaultConfig fault = options_.fault_config;
  if (second) fault.seed ^= 0x9e3779b97f4a7c15ULL;
  return std::make_unique<PimDevice>(options_.pim_config, fault,
                                     options_.recovery);
}

Status PimEngine::BuildDirectEd(const FloatMatrix& data) {
  num_objects_ = data.rows();
  dims_ = data.cols();
  device1_ = MakeDevice(/*second=*/false);
  PIMINE_RETURN_IF_ERROR(
      device1_->ProgramDataset(quantizer_.Quantize(data), operand_bits_));
  phi_ = quantizer_.PhiEdAll(data);
  PIMINE_RETURN_IF_ERROR(device1_->StoreAux(phi_.size() * sizeof(double)));
  offline_ns_ = device1_->stats().program_ns;
  offline_bytes_written_ =
      num_objects_ * dims_ * (operand_bits_ / 8) + phi_.size() * sizeof(double);
  return Status::OK();
}

Status PimEngine::BuildSegment(const FloatMatrix& data, bool with_stds) {
  num_objects_ = data.rows();
  dims_ = data.cols();
  const int64_t s = num_segments_;
  SegmentStats stats = ComputeSegmentStats(data, s);

  device1_ = MakeDevice(/*second=*/false);
  PIMINE_RETURN_IF_ERROR(device1_->ProgramDataset(
      quantizer_.Quantize(stats.means), operand_bits_));
  double program_ns = device1_->stats().program_ns;
  uint64_t bytes = num_objects_ * s * (operand_bits_ / 8);

  if (with_stds) {
    device2_ = MakeDevice(/*second=*/true);
    PIMINE_RETURN_IF_ERROR(device2_->ProgramDataset(
        quantizer_.Quantize(stats.stds), operand_bits_));
    program_ns += device2_->stats().program_ns;
    bytes += num_objects_ * s * (operand_bits_ / 8);
  }

  phi_.resize(num_objects_);
  for (size_t i = 0; i < num_objects_; ++i) {
    phi_[i] = with_stds
                  ? quantizer_.PhiFnn(stats.means.row(i), stats.stds.row(i))
                  : quantizer_.PhiSm(stats.means.row(i));
  }
  PIMINE_RETURN_IF_ERROR(device1_->StoreAux(phi_.size() * sizeof(double)));
  bytes += phi_.size() * sizeof(double);

  offline_ns_ = program_ns;
  offline_bytes_written_ = bytes;
  return Status::OK();
}

Status PimEngine::BuildDotUpper(const FloatMatrix& data, bool pearson) {
  num_objects_ = data.rows();
  dims_ = data.cols();
  device1_ = MakeDevice(/*second=*/false);
  PIMINE_RETURN_IF_ERROR(
      device1_->ProgramDataset(quantizer_.Quantize(data), operand_bits_));

  sum_floor_.resize(num_objects_);
  norm_.resize(num_objects_);
  if (pearson) phi_b_.resize(num_objects_);
  for (size_t i = 0; i < num_objects_; ++i) {
    const auto row = data.row(i);
    sum_floor_[i] = quantizer_.SumFloors(row);
    if (pearson) {
      const PccDecomposition::Phi phi = PccDecomposition::ComputePhi(row);
      norm_[i] = phi.a;
      phi_b_[i] = phi.b;
    } else {
      norm_[i] = CsDecomposition::Phi(row);
    }
  }
  const uint64_t aux_bytes =
      (sum_floor_.size() + norm_.size() + phi_b_.size()) * sizeof(double);
  PIMINE_RETURN_IF_ERROR(device1_->StoreAux(aux_bytes));
  offline_ns_ = device1_->stats().program_ns;
  offline_bytes_written_ =
      num_objects_ * dims_ * (operand_bits_ / 8) + aux_bytes;
  return Status::OK();
}

Status PimEngine::CheckQuery(std::span<const float> query) const {
  if (query.size() != dims_) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  for (float v : query) {
    if (!(v >= 0.0f && v <= 1.0f)) {
      return Status::InvalidArgument("query must be normalized into [0, 1]");
    }
  }
  return Status::OK();
}

Result<PimEngine::QueryHandle> PimEngine::RunQuery(
    std::span<const float> query) const {
  QueryScratch scratch;
  return RunQuery(query, &scratch);
}

Result<PimEngine::QueryHandle> PimEngine::RunQuery(
    std::span<const float> query, QueryScratch* scratch) const {
  PIMINE_ASSIGN_OR_RETURN(QueryHandleBatch batch,
                          RunQueryBatch(query, /*num_queries=*/1, scratch));
  // A one-query batch is exactly one single-query operation, so the views
  // can be moved straight into the scalar handle.
  QueryHandle handle;
  handle.dots1 = std::move(batch.dots1);
  handle.dots2 = std::move(batch.dots2);
  handle.phi_q = batch.phi_q[0];
  handle.sum_floor_q = batch.sum_floor_q[0];
  handle.norm_q = batch.norm_q[0];
  handle.phi_b_q = batch.phi_b_q[0];
  handle.suspect1 = std::move(batch.suspect1);
  handle.suspect2 = std::move(batch.suspect2);
  return handle;
}

Result<PimEngine::QueryHandleBatch> PimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries) const {
  QueryScratch scratch;
  return RunQueryBatch(queries, num_queries, &scratch);
}

namespace {

/// Drops an all-clean suspect vector so downstream consumers keep the
/// zero-overhead fast path (empty == nothing flagged).
void CompactSuspect(std::vector<uint8_t>* suspect) {
  for (uint8_t s : *suspect) {
    if (s != 0) return;
  }
  suspect->clear();
}

}  // namespace

Status PimEngine::PrepareBatch(std::span<const float> queries,
                               size_t num_queries, QueryScratch* scratch,
                               QueryHandleBatch* batch) const {
  if (scratch == nullptr) {
    return Status::InvalidArgument(
        "RunQueryBatch requires a non-null scratch");
  }
  if (batch == nullptr) {
    return Status::InvalidArgument(
        "PrepareBatch requires a non-null batch handle");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument(
        "empty query batch: RunQueryBatch requires num_queries >= 1");
  }
  if (queries.size() != num_queries * dims_) {
    return Status::InvalidArgument("query batch dimensionality mismatch");
  }
  for (size_t q = 0; q < num_queries; ++q) {
    PIMINE_RETURN_IF_ERROR(CheckQuery(queries.subspan(q * dims_, dims_)));
  }

  // Per-query quantize spans are measured per iteration of the loops below
  // (invariant across batch grouping). Null when observability is disabled.
  obs::Obs* const o = obs::Obs::Get();

  batch->num_queries = num_queries;
  batch->stride = num_objects_;
  batch->phi_q.assign(num_queries, 0.0);
  batch->sum_floor_q.assign(num_queries, 0.0);
  batch->norm_q.assign(num_queries, 0.0);
  batch->phi_b_q.assign(num_queries, 0.0);

  switch (mode_) {
    case EngineMode::kDirectEd:
    case EngineMode::kCosine:
    case EngineMode::kPearson: {
      // One quantization pass over the whole batch.
      scratch->ints.resize(num_queries * dims_);
      for (size_t q = 0; q < num_queries; ++q) {
        const TrafficCounters before =
            o != nullptr ? traffic::Local() : TrafficCounters();
        const auto query = queries.subspan(q * dims_, dims_);
        quantizer_.QuantizeRow(
            query, std::span<int32_t>(scratch->ints)
                       .subspan(q * dims_, dims_));
        if (mode_ == EngineMode::kDirectEd) {
          batch->phi_q[q] = quantizer_.PhiEd(query);
        } else {
          batch->sum_floor_q[q] = quantizer_.SumFloors(query);
          if (mode_ == EngineMode::kCosine) {
            batch->norm_q[q] = CsDecomposition::Phi(query);
          } else {
            const PccDecomposition::Phi phi =
                PccDecomposition::ComputePhi(query);
            batch->norm_q[q] = phi.a;
            batch->phi_b_q[q] = phi.b;
          }
        }
        if (o != nullptr) {
          o->trace().Complete("engine", "quantize",
                              obs::TrackFor(static_cast<int64_t>(q)),
                              o->HostNs(traffic::Local() - before));
        }
      }
      break;
    }
    case EngineMode::kSegmentFnn:
    case EngineMode::kSegmentSm: {
      const size_t s = static_cast<size_t>(num_segments_);
      const bool with_stds = mode_ == EngineMode::kSegmentFnn;
      scratch->ints.resize(num_queries * s);
      if (with_stds) scratch->ints2.resize(num_queries * s);
      scratch->means.resize(s);
      scratch->stds.resize(s);
      for (size_t q = 0; q < num_queries; ++q) {
        const TrafficCounters before =
            o != nullptr ? traffic::Local() : TrafficCounters();
        const auto query = queries.subspan(q * dims_, dims_);
        ComputeSegments(query, num_segments_, scratch->means, scratch->stds);
        quantizer_.QuantizeRow(
            scratch->means,
            std::span<int32_t>(scratch->ints).subspan(q * s, s));
        if (with_stds) {
          batch->phi_q[q] = quantizer_.PhiFnn(scratch->means, scratch->stds);
          quantizer_.QuantizeRow(
              scratch->stds,
              std::span<int32_t>(scratch->ints2).subspan(q * s, s));
        } else {
          batch->phi_q[q] = quantizer_.PhiSm(scratch->means);
        }
        if (o != nullptr) {
          o->trace().Complete("engine", "quantize",
                              obs::TrackFor(static_cast<int64_t>(q)),
                              o->HostNs(traffic::Local() - before));
        }
      }
      break;
    }
  }
  return Status::OK();
}

Status PimEngine::DeviceBatch(const QueryScratch& scratch, size_t num_queries,
                              QueryHandleBatch* batch,
                              bool emit_query_spans) const {
  if (batch == nullptr) {
    return Status::InvalidArgument(
        "DeviceBatch requires a non-null batch handle");
  }
  const bool with_stds = mode_ == EngineMode::kSegmentFnn;
  const size_t width = num_segments_ > 0
                           ? static_cast<size_t>(num_segments_)
                           : dims_;
  if (scratch.ints.size() != num_queries * width ||
      (with_stds && scratch.ints2.size() != num_queries * width)) {
    return Status::InvalidArgument(
        "scratch does not hold a prepared batch of this geometry; call "
        "PrepareBatch first");
  }
  batch->stride = num_objects_;
  // Only fault-enabled devices fill suspect flags; fault-free runs never
  // pay the allocation.
  const bool with_suspect = options_.fault_config.enabled();
  std::vector<uint8_t>* suspect1 = with_suspect ? &batch->suspect1 : nullptr;
  std::vector<uint8_t>* suspect2 = with_suspect ? &batch->suspect2 : nullptr;

  PIMINE_RETURN_IF_ERROR(device1_->DotProductBatch(
      scratch.ints, num_queries, &batch->dots1, suspect1));
  if (with_stds) {
    PIMINE_RETURN_IF_ERROR(device2_->DotProductBatch(
        scratch.ints2, num_queries, &batch->dots2, suspect2));
  }
  // Per-query device spans use the serial-equivalent timing model (same
  // value for every query regardless of batching), so the trace bytes are
  // identical at any device-batch size.
  if (obs::Obs* const o = emit_query_spans ? obs::Obs::Get() : nullptr) {
    const double dot_ns = device1_->SerialDotNsPerQuery();
    const double dot2_ns = with_stds ? device2_->SerialDotNsPerQuery() : 0.0;
    for (size_t q = 0; q < num_queries; ++q) {
      const int64_t track = obs::TrackFor(static_cast<int64_t>(q));
      o->trace().Complete("engine", "pim_dot", track, dot_ns);
      if (with_stds) {
        o->trace().Complete("engine", "pim_dot2", track, dot2_ns);
      }
    }
  }
  if (with_suspect) {
    CompactSuspect(&batch->suspect1);
    CompactSuspect(&batch->suspect2);
  }
  return Status::OK();
}

Status PimEngine::HostRecomputeBatch(const QueryScratch& scratch,
                                     size_t num_queries,
                                     QueryHandleBatch* batch) const {
  if (batch == nullptr) {
    return Status::InvalidArgument(
        "HostRecomputeBatch requires a non-null batch handle");
  }
  const bool with_stds = mode_ == EngineMode::kSegmentFnn;
  const size_t width = num_segments_ > 0
                           ? static_cast<size_t>(num_segments_)
                           : dims_;
  if (scratch.ints.size() != num_queries * width ||
      (with_stds && scratch.ints2.size() != num_queries * width)) {
    return Status::InvalidArgument(
        "scratch does not hold a prepared batch of this geometry; call "
        "PrepareBatch first");
  }
  batch->stride = num_objects_;
  PIMINE_RETURN_IF_ERROR(
      device1_->HostRecomputeBatch(scratch.ints, num_queries, &batch->dots1));
  if (with_stds) {
    PIMINE_RETURN_IF_ERROR(device2_->HostRecomputeBatch(
        scratch.ints2, num_queries, &batch->dots2));
  }
  // Host recomputation is exact: nothing is suspect.
  batch->suspect1.clear();
  batch->suspect2.clear();
  return Status::OK();
}

Status PimEngine::SlackFillBatch(size_t num_queries,
                                 QueryHandleBatch* batch) const {
  if (batch == nullptr) {
    return Status::InvalidArgument(
        "SlackFillBatch requires a non-null batch handle");
  }
  if (num_queries == 0) {
    return Status::InvalidArgument(
        "empty query batch: SlackFillBatch requires num_queries >= 1");
  }
  batch->num_queries = num_queries;
  batch->stride = num_objects_;
  const size_t total = num_queries * num_objects_;
  batch->dots1.assign(total, 0);
  batch->suspect1.assign(total, 1);
  if (mode_ == EngineMode::kSegmentFnn) {
    batch->dots2.assign(total, 0);
    batch->suspect2.assign(total, 1);
  } else {
    batch->dots2.clear();
    batch->suspect2.clear();
  }
  return Status::OK();
}

Result<PimEngine::QueryHandleBatch> PimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries,
    QueryScratch* scratch) const {
  QueryHandleBatch batch;
  PIMINE_RETURN_IF_ERROR(RunQueryBatch(queries, num_queries, scratch, &batch));
  return batch;
}

Status PimEngine::RunQueryBatch(std::span<const float> queries,
                                size_t num_queries, QueryScratch* scratch,
                                QueryHandleBatch* batch) const {
  if (batch == nullptr) {
    return Status::InvalidArgument(
        "RunQueryBatch requires a non-null batch handle");
  }
  // A reused handle may carry state from a previous dispatch; clear the
  // vectors DeviceBatch only fills conditionally (second-device dots,
  // suspect flags) so "empty" keeps meaning "clean / not present".
  batch->dots2.clear();
  batch->suspect1.clear();
  batch->suspect2.clear();
  PIMINE_RETURN_IF_ERROR(PrepareBatch(queries, num_queries, scratch, batch));
  return DeviceBatch(*scratch, num_queries, batch);
}

Status PimEngine::AppendRows(const FloatMatrix& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot append an empty row set");
  }
  if (rows.cols() != dims_) {
    return Status::InvalidArgument("appended rows dimensionality mismatch");
  }
  PIMINE_RETURN_IF_ERROR(CheckUnitRange(rows));

  const auto program_ns_total = [this]() {
    double ns = device1_->stats().program_ns;
    if (device2_) ns += device2_->stats().program_ns;
    return ns;
  };
  const double prog_before = program_ns_total();

  switch (mode_) {
    case EngineMode::kDirectEd: {
      PIMINE_RETURN_IF_ERROR(
          device1_->ProgramDelta(quantizer_.Quantize(rows)));
      const std::vector<double> phi = quantizer_.PhiEdAll(rows);
      phi_.insert(phi_.end(), phi.begin(), phi.end());
      PIMINE_RETURN_IF_ERROR(device1_->StoreAux(phi.size() * sizeof(double)));
      offline_bytes_written_ += rows.rows() * dims_ * (operand_bits_ / 8) +
                                phi.size() * sizeof(double);
      break;
    }
    case EngineMode::kSegmentFnn:
    case EngineMode::kSegmentSm: {
      const bool with_stds = mode_ == EngineMode::kSegmentFnn;
      const SegmentStats stats = ComputeSegmentStats(rows, num_segments_);
      PIMINE_RETURN_IF_ERROR(
          device1_->ProgramDelta(quantizer_.Quantize(stats.means)));
      uint64_t bytes =
          rows.rows() * static_cast<size_t>(num_segments_) *
          (operand_bits_ / 8);
      if (with_stds) {
        PIMINE_RETURN_IF_ERROR(
            device2_->ProgramDelta(quantizer_.Quantize(stats.stds)));
        bytes *= 2;
      }
      for (size_t i = 0; i < rows.rows(); ++i) {
        phi_.push_back(with_stds ? quantizer_.PhiFnn(stats.means.row(i),
                                                     stats.stds.row(i))
                                 : quantizer_.PhiSm(stats.means.row(i)));
      }
      PIMINE_RETURN_IF_ERROR(
          device1_->StoreAux(rows.rows() * sizeof(double)));
      offline_bytes_written_ += bytes + rows.rows() * sizeof(double);
      break;
    }
    case EngineMode::kCosine:
    case EngineMode::kPearson: {
      const bool pearson = mode_ == EngineMode::kPearson;
      PIMINE_RETURN_IF_ERROR(
          device1_->ProgramDelta(quantizer_.Quantize(rows)));
      for (size_t i = 0; i < rows.rows(); ++i) {
        const auto row = rows.row(i);
        sum_floor_.push_back(quantizer_.SumFloors(row));
        if (pearson) {
          const PccDecomposition::Phi phi = PccDecomposition::ComputePhi(row);
          norm_.push_back(phi.a);
          phi_b_.push_back(phi.b);
        } else {
          norm_.push_back(CsDecomposition::Phi(row));
        }
      }
      const uint64_t aux_bytes =
          rows.rows() * (pearson ? 3 : 2) * sizeof(double);
      PIMINE_RETURN_IF_ERROR(device1_->StoreAux(aux_bytes));
      offline_bytes_written_ +=
          rows.rows() * dims_ * (operand_bits_ / 8) + aux_bytes;
      break;
    }
  }
  num_objects_ += rows.rows();
  offline_ns_ += program_ns_total() - prog_before;
  return Status::OK();
}

Status PimEngine::DeleteRow(size_t index) {
  if (index >= num_objects_) {
    return Status::InvalidArgument("delete index out of range");
  }
  if (live_objects() <= 1 && !device1_->tombstoned(index)) {
    return Status::FailedPrecondition("cannot delete the last live row");
  }
  return device1_->Tombstone(index);
}

Status PimEngine::Compact(std::vector<uint32_t>* live_out) {
  std::vector<uint32_t> live;
  live.reserve(num_objects_);
  for (size_t i = 0; i < num_objects_; ++i) {
    if (!device1_->tombstoned(i)) live.push_back(static_cast<uint32_t>(i));
  }
  if (live.empty()) {
    return Status::FailedPrecondition("compaction would leave no live rows");
  }
  const auto program_ns_total = [this]() {
    double ns = device1_->stats().program_ns;
    if (device2_) ns += device2_->stats().program_ns;
    return ns;
  };
  const double prog_before = program_ns_total();
  PIMINE_RETURN_IF_ERROR(device1_->CompactRows(live));
  if (device2_) PIMINE_RETURN_IF_ERROR(device2_->CompactRows(live));

  const auto compact_terms = [&live](std::vector<double>* v) {
    if (v->empty()) return;
    for (size_t i = 0; i < live.size(); ++i) (*v)[i] = (*v)[live[i]];
    v->resize(live.size());
  };
  compact_terms(&phi_);
  compact_terms(&sum_floor_);
  compact_terms(&norm_);
  compact_terms(&phi_b_);

  num_objects_ = live.size();
  const size_t width = num_segments_ > 0
                           ? static_cast<size_t>(num_segments_)
                           : dims_;
  offline_bytes_written_ += live.size() * width * (operand_bits_ / 8) *
                            (device2_ ? 2 : 1);
  offline_ns_ += program_ns_total() - prog_before;
  if (live_out != nullptr) *live_out = std::move(live);
  return Status::OK();
}

double PimEngine::PruneBound() const {
  switch (mode_) {
    case EngineMode::kDirectEd:
    case EngineMode::kSegmentFnn:
    case EngineMode::kSegmentSm:
      // A +inf "lower bound" sorts tombstones last and the early-break
      // candidate loops never refine them.
      return std::numeric_limits<double>::infinity();
    case EngineMode::kCosine:
    case EngineMode::kPearson:
      // Searches negate upper bounds for maximize, so -inf sorts last.
      return -std::numeric_limits<double>::infinity();
  }
  return std::numeric_limits<double>::infinity();
}

double PimEngine::TrivialBound() const {
  switch (mode_) {
    case EngineMode::kDirectEd:
    case EngineMode::kSegmentFnn:
    case EngineMode::kSegmentSm:
      return 0.0;  // squared distances are non-negative.
    case EngineMode::kCosine:
    case EngineMode::kPearson:
      return 1.0;  // cosine / Pearson never exceed 1.
  }
  return 0.0;
}

double PimEngine::CombineBound(size_t index, uint64_t dot1, uint64_t dot2,
                               double phi_q, double sum_floor_q,
                               double norm_q, double phi_b_q) const {
  PIMINE_DCHECK(index < num_objects_);
  switch (mode_) {
    case EngineMode::kDirectEd:
      return LbPimEdCombine(phi_[index], phi_q, dot1,
                            static_cast<int64_t>(dims_), quantizer_.alpha());
    case EngineMode::kSegmentFnn:
      return LbPimFnnCombine(phi_[index], phi_q, dot1, dot2, num_segments_,
                             segment_length_, quantizer_.alpha());
    case EngineMode::kSegmentSm:
      return LbPimSmCombine(phi_[index], phi_q, dot1, num_segments_,
                            segment_length_, quantizer_.alpha());
    case EngineMode::kCosine: {
      const double ub_dot =
          UbPimDotCombine(dot1, sum_floor_[index], sum_floor_q,
                          static_cast<int64_t>(dims_), quantizer_.alpha());
      return UbPimCosine(ub_dot, norm_[index], norm_q);
    }
    case EngineMode::kPearson: {
      const double ub_dot =
          UbPimDotCombine(dot1, sum_floor_[index], sum_floor_q,
                          static_cast<int64_t>(dims_), quantizer_.alpha());
      return UbPimPearson(ub_dot, static_cast<int64_t>(dims_), phi_b_[index],
                          phi_b_q, norm_[index], norm_q);
    }
  }
  PIMINE_CHECK(false) << "unreachable";
  return 0.0;
}

double PimEngine::BoundFor(const QueryHandle& handle, size_t index) const {
  if (device1_->tombstoned(index)) return PruneBound();
  if ((!handle.suspect1.empty() && handle.suspect1[index] != 0) ||
      (!handle.suspect2.empty() && handle.suspect2[index] != 0)) {
    return TrivialBound();
  }
  return CombineBound(
      index, handle.dots1[index],
      mode_ == EngineMode::kSegmentFnn ? handle.dots2[index] : 0,
      handle.phi_q, handle.sum_floor_q, handle.norm_q, handle.phi_b_q);
}

double PimEngine::BoundFor(const QueryHandleBatch& batch, size_t query,
                           size_t index) const {
  PIMINE_DCHECK(query < batch.num_queries);
  if (device1_->tombstoned(index)) return PruneBound();
  const size_t off = query * batch.stride + index;
  if ((!batch.suspect1.empty() && batch.suspect1[off] != 0) ||
      (!batch.suspect2.empty() && batch.suspect2[off] != 0)) {
    return TrivialBound();
  }
  return CombineBound(index, batch.dots1[off],
                      mode_ == EngineMode::kSegmentFnn ? batch.dots2[off] : 0,
                      batch.phi_q[query], batch.sum_floor_q[query],
                      batch.norm_q[query], batch.phi_b_q[query]);
}

Status PimEngine::ComputeBounds(std::span<const float> query,
                                std::vector<double>* bounds,
                                const ExecPolicy& policy) const {
  if (bounds == nullptr) {
    return Status::InvalidArgument(
        "ComputeBounds requires a non-null output vector");
  }
  PIMINE_ASSIGN_OR_RETURN(QueryHandle handle, RunQuery(query));
  bounds->resize(num_objects_);
  double* out = bounds->data();
  ParallelChunks(policy, num_objects_, policy.block_size,
                 [&](size_t begin, size_t end, size_t /*slot*/) {
                   for (size_t i = begin; i < end; ++i) {
                     out[i] = BoundFor(handle, i);
                   }
                 });
  return Status::OK();
}

double PimEngine::PimComputeNs() const {
  double total = device1_ ? device1_->stats().compute_ns : 0.0;
  if (device2_) total += device2_->stats().compute_ns;
  return total;
}

double PimEngine::SerialDeviceNsPerQuery() const {
  double total = device1_ ? device1_->SerialDotNsPerQuery() : 0.0;
  if (device2_) total += device2_->SerialDotNsPerQuery();
  return total;
}

FaultStats PimEngine::FaultStatsTotal() const {
  FaultStats total;
  if (device1_) total.Merge(device1_->stats().fault);
  if (device2_) total.Merge(device2_->stats().fault);
  return total;
}

double PimEngine::PimPipelinedNs() const {
  double total = device1_ ? device1_->stats().pipelined_ns : 0.0;
  if (device2_) total += device2_->stats().pipelined_ns;
  return total;
}

double PimEngine::ModeledBatchNs(size_t num_queries) const {
  double total = device1_ ? device1_->BatchDotNs(num_queries) : 0.0;
  if (device2_) total += device2_->BatchDotNs(num_queries);
  return total;
}

void PimEngine::ResetOnlineStats() {
  if (device1_) device1_->ResetOnlineStats();
  if (device2_) device2_->ResetOnlineStats();
}

}  // namespace pimine
