#include "core/sharded_engine.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace pimine {
namespace {

/// Decorrelates shard j's fault seed from shard 0's: independent physical
/// devices have independent fault patterns. Same mixer as the placement
/// hash (stateless, platform-independent).
uint64_t ShardSeedSalt(uint64_t j) {
  uint64_t x = j + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Decorrelates replica r of shard j from the primary: each copy is its
/// own physical device with its own fault pattern. Replica 0 never gets a
/// replica salt, so the primary's build (and with it every no-fault run)
/// is bit-identical to a replicas == 1 fleet.
uint64_t ReplicaSeedSalt(uint64_t j, uint64_t r) {
  return ShardSeedSalt(0x5eed0000ULL + j * ShardOptions::kMaxReplicas + r);
}

/// Token feeding the seeded backoff jitter: a pure mix of the dispatch
/// instant and the shard, so concurrent ladders of the same dispatch draw
/// identical waits regardless of thread interleaving.
uint64_t BackoffToken(uint64_t now_ns, uint64_t shard) {
  return ShardSeedSalt(now_ns ^ ShardSeedSalt(shard));
}

ShardMap TrivialShardMap(size_t n) {
  ShardMap map;
  map.rows_per_shard.resize(1);
  map.rows_per_shard[0].resize(n);
  std::iota(map.rows_per_shard[0].begin(), map.rows_per_shard[0].end(), 0u);
  map.shard_of.assign(n, 0);
  map.local_of = map.rows_per_shard[0];
  return map;
}

/// Assembles a FailoverStats snapshot from a shard's atomic counters; the
/// ns figure is derived from the integer counters at snapshot time (same
/// linear TransferLatencyNs formula as the scatter/gather classes), so it
/// is identical for every charge interleaving.
template <typename Counters>
FailoverStats LoadFailover(const Counters& ctr, const PimConfig& c) {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  FailoverStats f;
  f.injected = ctr.fo_injected.load(kRelaxed);
  f.recovered = ctr.fo_recovered.load(kRelaxed);
  f.shed = ctr.fo_shed.load(kRelaxed);
  f.attempts_failed = ctr.fo_attempts_failed.load(kRelaxed);
  f.chaos_denied = ctr.fo_chaos_denied.load(kRelaxed);
  f.device_faults = ctr.fo_device_faults.load(kRelaxed);
  f.strikes = ctr.fo_strikes.load(kRelaxed);
  f.struck_out = ctr.fo_struck_out.load(kRelaxed);
  f.slack_fills = ctr.fo_slack_fills.load(kRelaxed);
  f.retry_messages = ctr.fo_retry_messages.load(kRelaxed);
  f.retry_bytes = ctr.fo_retry_bytes.load(kRelaxed);
  f.backoff_ns = ctr.fo_backoff_ns.load(kRelaxed);
  f.failover_ns =
      static_cast<double>(f.retry_messages) * c.interconnect_hop_ns +
      static_cast<double>(f.retry_bytes) / c.interconnect_gbps +
      static_cast<double>(f.backoff_ns);
  return f;
}

}  // namespace

Result<std::unique_ptr<ShardedPimEngine>> ShardedPimEngine::Build(
    const FloatMatrix& data, Distance distance, const EngineOptions& options) {
  auto fleet = std::unique_ptr<ShardedPimEngine>(new ShardedPimEngine());
  fleet->options_ = options;
  fleet->num_objects_ = data.rows();
  PIMINE_RETURN_IF_ERROR(options.shard.ValidateReplication());
  const int num_replicas = options.shard.replicas;

  // Programs replicas 1..R-1 of one shard: each copy is a full build of
  // the same shard data with a decorrelated fault seed (its own physical
  // device), charging its own offline programming pass.
  const auto add_replicas = [&](size_t j, const FloatMatrix& shard_data,
                                const EngineOptions& primary_options)
      -> Status {
    for (int r = 1; r < num_replicas; ++r) {
      EngineOptions er = primary_options;
      er.fault_config.seed ^= ReplicaSeedSalt(j, static_cast<uint64_t>(r));
      PIMINE_ASSIGN_OR_RETURN(std::unique_ptr<PimEngine> replica,
                              PimEngine::Build(shard_data, distance, er));
      fleet->engines_[j].push_back(std::move(replica));
    }
    return Status::OK();
  };

  if (options.shard.shards == 1) {
    // Single device: exactly a PimEngine (same errors, stats and traces).
    PIMINE_ASSIGN_OR_RETURN(std::unique_ptr<PimEngine> engine,
                            PimEngine::Build(data, distance, options));
    fleet->plan_ = engine->plan();
    fleet->engines_.emplace_back();
    fleet->engines_[0].push_back(std::move(engine));
    PIMINE_RETURN_IF_ERROR(add_replicas(0, data, options));
    fleet->map_ = TrivialShardMap(data.rows());
    fleet->shard_counters_.push_back(std::make_unique<ShardCounters>());
    fleet->InitReplicaState();
    return fleet;
  }

  PIMINE_ASSIGN_OR_RETURN(fleet->map_, BuildShardMap(data, options.shard));
  if (distance == Distance::kHamming) {
    return Status::InvalidArgument(
        "use PimHammingEngine for binary-code workloads");
  }
  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t d = static_cast<int64_t>(data.cols());

  // Resolve the bound family and segment geometry on the FULL dataset,
  // replicating PimEngine::Build's selection (including its capacity
  // errors), then force the outcome on every shard: a shard's smaller plan
  // must not change the bound function, or results would depend on M.
  EngineOptions shard_options = options;
  shard_options.shard = ShardOptions();  // each member is one device.
  if (distance == Distance::kCosine || distance == Distance::kPearson) {
    if (options.bound != EngineOptions::Bound::kAuto) {
      return Status::InvalidArgument(
          "CS/PCC engines only support the automatic bound");
    }
    PIMINE_ASSIGN_OR_RETURN(fleet->plan_,
                            PlanPimLayout(n, d, options.operand_bits, 1,
                                          options.pim_config));
    if (fleet->plan_.compressed) {
      return Status::CapacityExceeded(
          "CS/PCC require the full-dimensionality dataset on PIM; "
          "enlarge the PIM array");
    }
  } else {
    EngineOptions::Bound bound = options.bound;
    MemoryPlan plan;
    if (bound == EngineOptions::Bound::kAuto) {
      PIMINE_ASSIGN_OR_RETURN(plan, PlanPimLayout(n, d, options.operand_bits,
                                                  1, options.pim_config));
      bound = plan.compressed ? EngineOptions::Bound::kSegmentFnn
                              : EngineOptions::Bound::kDirectEd;
    }
    switch (bound) {
      case EngineOptions::Bound::kDirectEd: {
        PIMINE_ASSIGN_OR_RETURN(plan,
                                PlanPimLayout(n, d, options.operand_bits, 1,
                                              options.pim_config));
        if (plan.compressed) {
          return Status::CapacityExceeded(
              "full-dimensionality LB_PIM-ED does not fit; use a segment "
              "bound");
        }
        shard_options.bound = EngineOptions::Bound::kDirectEd;
        break;
      }
      case EngineOptions::Bound::kSegmentFnn:
      case EngineOptions::Bound::kSegmentSm: {
        const int copies = bound == EngineOptions::Bound::kSegmentFnn ? 2 : 1;
        PIMINE_ASSIGN_OR_RETURN(plan,
                                PlanPimLayout(n, d, options.operand_bits,
                                              copies, options.pim_config));
        int64_t s = std::min(plan.s, std::max<int64_t>(1, d / 4));
        if (options.force_segments > 0) {
          if (options.force_segments > plan.s) {
            return Status::CapacityExceeded(
                "forced segment count exceeds the Theorem 4 maximum");
          }
          s = options.force_segments;
        }
        plan.s = s;
        plan.compressed = s < d;
        shard_options.bound = bound;
        shard_options.force_segments = s;
        break;
      }
      case EngineOptions::Bound::kAuto:
        return Status::Internal("unreachable engine bound selection");
    }
    fleet->plan_ = plan;
  }

  fleet->engines_.resize(fleet->map_.shards());
  for (size_t j = 0; j < fleet->map_.shards(); ++j) {
    const std::vector<uint32_t>& rows = fleet->map_.rows_per_shard[j];
    FloatMatrix shard_data(rows.size(), static_cast<size_t>(d));
    for (size_t local = 0; local < rows.size(); ++local) {
      const auto src = data.row(rows[local]);
      std::copy(src.begin(), src.end(),
                shard_data.mutable_row(local).begin());
    }
    EngineOptions ej = shard_options;
    if (j > 0) ej.fault_config.seed ^= ShardSeedSalt(j);
    PIMINE_ASSIGN_OR_RETURN(std::unique_ptr<PimEngine> primary,
                            PimEngine::Build(shard_data, distance, ej));
    fleet->engines_[j].push_back(std::move(primary));
    PIMINE_RETURN_IF_ERROR(add_replicas(j, shard_data, ej));
  }
  fleet->shard_counters_.reserve(fleet->engines_.size());
  for (size_t j = 0; j < fleet->engines_.size(); ++j) {
    fleet->shard_counters_.push_back(std::make_unique<ShardCounters>());
  }
  fleet->InitReplicaState();
  return fleet;
}

void ShardedPimEngine::InitReplicaState() {
  replica_state_.resize(engines_.size());
  for (size_t j = 0; j < engines_.size(); ++j) {
    replica_state_[j].clear();
    for (size_t r = 0; r < engines_[j].size(); ++r) {
      replica_state_[j].push_back(std::make_unique<ReplicaState>());
    }
  }
}

Result<ShardedPimEngine::QueryHandleBatch> ShardedPimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries) const {
  QueryScratch scratch;
  return RunQueryBatch(queries, num_queries, &scratch);
}

Result<ShardedPimEngine::QueryHandleBatch> ShardedPimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries,
    QueryScratch* scratch) const {
  QueryHandleBatch out;
  PIMINE_RETURN_IF_ERROR(RunQueryBatch(queries, num_queries, scratch, &out));
  return out;
}

Status ShardedPimEngine::RunQueryBatch(std::span<const float> queries,
                                       size_t num_queries,
                                       QueryScratch* scratch,
                                       QueryHandleBatch* result) const {
  return RunQueryBatch(queries, num_queries, scratch, result,
                       DispatchOptions());
}

Status ShardedPimEngine::RunQueryBatch(std::span<const float> queries,
                                       size_t num_queries,
                                       QueryScratch* scratch,
                                       QueryHandleBatch* result,
                                       const DispatchOptions& dispatch) const {
  if (result == nullptr) {
    return Status::InvalidArgument(
        "RunQueryBatch requires a non-null batch handle");
  }
  QueryHandleBatch& out = *result;
  out.num_queries = num_queries;
  out.shards.resize(engines_.size());
  // A reused handle may carry state from a previous dispatch; clear what
  // DeviceBatch only fills conditionally so "empty" keeps meaning "clean".
  for (PimEngine::QueryHandleBatch& h : out.shards) {
    h.dots2.clear();
    h.suspect1.clear();
    h.suspect2.clear();
  }
  // Query-side work (validation, scalars, quantization) happens ONCE on
  // shard 0's engine — every shard shares the quantizer and geometry, so
  // the prepared operands serve the whole fleet and the host traffic stays
  // identical to the single-device run.
  PIMINE_RETURN_IF_ERROR(
      primary(0).PrepareBatch(queries, num_queries, scratch, &out.shards[0]));
  const size_t m = engines_.size();
  if (m == 1 && engines_[0].size() == 1 && chaos_ == nullptr) {
    // Single device, no replicas, no chaos plane: the pre-replica path,
    // bit-identical (per-query spans included).
    return primary(0).DeviceBatch(*scratch, num_queries, &out.shards[0]);
  }

  for (size_t j = 1; j < m; ++j) {
    PimEngine::QueryHandleBatch& h = out.shards[j];
    h.num_queries = num_queries;
    h.phi_q = out.shards[0].phi_q;
    h.sum_floor_q = out.shards[0].sum_floor_q;
    h.norm_q = out.shards[0].norm_q;
    h.phi_b_q = out.shards[0].phi_b_q;
  }

  // Scatter: every shard matches the same prepared operands against its
  // rows, walking its replica ladder on a fault. Per-query trace spans are
  // suppressed in the per-shard calls when M > 1 and emitted once below —
  // the shards run concurrently, so the fleet's serial-equivalent
  // per-query device time is one pass, not M.
  const bool multi = m > 1;
  std::vector<Status> status(m, Status::OK());
  ParallelChunks(fanout_policy_, m, 1,
                 [&](size_t begin, size_t end, size_t /*slot*/) {
                   for (size_t j = begin; j < end; ++j) {
                     status[j] = DeviceBatchWithFailover(
                         j, *scratch, num_queries, &out.shards[j], dispatch,
                         /*emit_query_spans=*/!multi);
                   }
                 });
  for (size_t j = 0; j < m; ++j) {
    PIMINE_RETURN_IF_ERROR(status[j]);
  }
  if (!multi) return Status::OK();

  // Interconnect accounting: one broadcast message per shard per device
  // matrix carrying the batch operands, one gather message per shard per
  // device matrix carrying that shard's results.
  const bool with_stds = mode() == EngineMode::kSegmentFnn;
  const uint64_t matrices = with_stds ? 2 : 1;
  const uint64_t operand_bytes =
      (scratch->ints.size() + scratch->ints2.size()) * sizeof(int32_t);
  // Charged to the shard each message terminates at: every shard receives
  // one operand broadcast per device matrix and returns one result message
  // per device matrix carrying its own dot products. Totals over shards
  // equal the former fleet-level charges exactly.
  for (size_t j = 0; j < m; ++j) {
    const PimEngine::QueryHandleBatch& h = out.shards[j];
    ShardCounters& ctr = *shard_counters_[j];
    ctr.scatter_messages.fetch_add(matrices, std::memory_order_relaxed);
    ctr.scatter_bytes.fetch_add(operand_bytes, std::memory_order_relaxed);
    ctr.gather_messages.fetch_add(matrices, std::memory_order_relaxed);
    ctr.gather_bytes.fetch_add(
        (h.dots1.size() + h.dots2.size()) * sizeof(uint64_t),
        std::memory_order_relaxed);
  }

  // One serial-equivalent set of per-query device spans, identical to the
  // single-device trace (pass latency is row-count independent).
  if (obs::Obs* const o = obs::Obs::Get()) {
    const double dot_ns = primary(0).device1().SerialDotNsPerQuery();
    const double dot2_ns =
        with_stds ? primary(0).device2()->SerialDotNsPerQuery() : 0.0;
    for (size_t q = 0; q < num_queries; ++q) {
      const int64_t track = obs::TrackFor(static_cast<int64_t>(q));
      o->trace().Complete("engine", "pim_dot", track, dot_ns);
      if (with_stds) {
        o->trace().Complete("engine", "pim_dot2", track, dot2_ns);
      }
    }
  }
  return Status::OK();
}

Status ShardedPimEngine::DeviceBatchWithFailover(
    size_t j, const QueryScratch& scratch, size_t num_queries,
    PimEngine::QueryHandleBatch* handle, const DispatchOptions& dispatch,
    bool emit_query_spans) const {
  constexpr auto kRelaxed = std::memory_order_relaxed;
  ShardCounters& ctr = *shard_counters_[j];
  const int num_replicas = static_cast<int>(engines_[j].size());
  const bool multi_replica = num_replicas > 1;
  const uint64_t now_ns = dispatch.now_ns != 0
                              ? dispatch.now_ns
                              : chaos_now_ns_.load(kRelaxed);
  const uint64_t matrices = mode() == EngineMode::kSegmentFnn ? 2 : 1;
  const uint64_t retry_bytes = RetryOperandBytes(num_queries);
  const bool chaos_on = chaos_ != nullptr && chaos_->enabled();

  // Consecutive-failure strike bookkeeping is meaningful only when there
  // is somewhere to fail over to: with one replica the legacy semantics
  // (attempt the device, escalate on a fault) are preserved untouched.
  const auto strike = [&](ReplicaState& rs) {
    if (!multi_replica) return;
    ctr.fo_strikes.fetch_add(1, kRelaxed);
    const uint32_t strikes =
        rs.strikes.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (strikes >= static_cast<uint32_t>(options_.shard.max_strikes) &&
        !rs.out.exchange(true, std::memory_order_acq_rel)) {
      ctr.fo_struck_out.fetch_add(1, kRelaxed);
    }
  };

  int failed = 0;
  uint64_t backoff_total = 0;
  bool skipped_out = false;
  bool deadline_shed = false;
  std::string last_fault;
  for (int r = 0; r < num_replicas; ++r) {
    ReplicaState& rs = *replica_state_[j][r];
    if (rs.out.load(std::memory_order_acquire)) {
      skipped_out = true;
      continue;
    }
    if (failed > 0) {
      // Retry transition: seeded exponential backoff, then re-scatter the
      // operands to the new replica. The deadline is checked BEFORE the
      // wait is charged — an op that cannot afford the next rung sheds
      // immediately rather than burning budget it does not have.
      const uint64_t wait = FailoverBackoffNs(
          options_.shard.backoff_base_ns, options_.shard.backoff_jitter_ns,
          options_.shard.backoff_seed, BackoffToken(now_ns, j), failed);
      if (dispatch.deadline_ns != 0 &&
          backoff_total + wait > dispatch.deadline_ns) {
        deadline_shed = true;
        break;
      }
      backoff_total += wait;
      ctr.fo_backoff_ns.fetch_add(wait, kRelaxed);
      ctr.fo_retry_messages.fetch_add(matrices, kRelaxed);
      ctr.fo_retry_bytes.fetch_add(retry_bytes, kRelaxed);
    }
    if (chaos_on &&
        (chaos_->LinkDown(static_cast<uint32_t>(j), now_ns) ||
         chaos_->ReplicaDown(static_cast<uint32_t>(j),
                             static_cast<uint32_t>(r), now_ns))) {
      // The chaos schedule denies this attempt outright: the replica (or
      // the shard's interconnect) is unavailable at the dispatch instant.
      ++failed;
      ctr.fo_attempts_failed.fetch_add(1, kRelaxed);
      ctr.fo_chaos_denied.fetch_add(1, kRelaxed);
      strike(rs);
      continue;
    }
    const Status s = engines_[j][r]->DeviceBatch(scratch, num_queries, handle,
                                                 emit_query_spans);
    if (s.ok()) {
      rs.strikes.store(0, kRelaxed);
      ctr.serving_replica.store(static_cast<uint32_t>(r), kRelaxed);
      ctr.slack_mode.store(false, kRelaxed);
      if (failed > 0 || skipped_out) {
        ctr.fo_injected.fetch_add(1, kRelaxed);
        ctr.fo_recovered.fetch_add(1, kRelaxed);
      }
      return Status::OK();
    }
    if (s.code() != StatusCode::kDeviceFault) return s;
    ++failed;
    ctr.fo_attempts_failed.fetch_add(1, kRelaxed);
    ctr.fo_device_faults.fetch_add(1, kRelaxed);
    strike(rs);
    last_fault = "replica " + std::to_string(r) + ": " + s.message();
  }

  // Every replica exhausted (struck out, denied, faulted, or priced out by
  // the ladder deadline): the op loses its device path.
  ctr.fo_injected.fetch_add(1, kRelaxed);
  ctr.fo_shed.fetch_add(1, kRelaxed);
  if (!options_.shard.failover) {
    // No escalation configured: the shed op propagates as a DeviceFault
    // carrying its provenance — shard index, replica ids walked, and a
    // deterministic op nonce (hash of the dispatch instant and shard, the
    // same token that seeds the ladder's backoff jitter) so one failing op
    // can be correlated across logs, retries and replays.
    char nonce[20];
    std::snprintf(nonce, sizeof(nonce), "%016llx",
                  static_cast<unsigned long long>(
                      BackoffToken(now_ns, j) ^ num_queries));
    return Status::DeviceFault(
        "shard " + std::to_string(j) + " (op " + nonce + "): all " +
        std::to_string(num_replicas) + " replica(s) exhausted" +
        (deadline_shed ? " (ladder deadline exceeded)" : "") +
        (last_fault.empty() ? "" : "; last fault at " + last_fault));
  }
  if (dispatch.slack_on_exhaustion) {
    // Degraded mode: serve the shard as a bound-slack fill — every bound
    // is the admissible trivial bound, so results stay exact after refine
    // while the shard sheds its modeled device work.
    PIMINE_RETURN_IF_ERROR(primary(j).SlackFillBatch(num_queries, handle));
    ctr.fo_slack_fills.fetch_add(1, kRelaxed);
    ctr.slack_mode.store(true, kRelaxed);
  } else {
    PIMINE_RETURN_IF_ERROR(
        primary(j).HostRecomputeBatch(scratch, num_queries, handle));
    ctr.slack_mode.store(false, kRelaxed);
  }
  ctr.serving_replica.store(static_cast<uint32_t>(num_replicas), kRelaxed);
  ctr.failovers.fetch_add(1, std::memory_order_relaxed);
  ctr.failed_over_queries.fetch_add(num_queries, std::memory_order_relaxed);
  return Status::OK();
}

ShardedPimEngine::FailoverPlan ShardedPimEngine::PlanFailover(
    size_t j, size_t num_queries, const DispatchOptions& dispatch) const {
  FailoverPlan plan;
  if (chaos_ == nullptr || !chaos_->enabled()) return plan;
  PIMINE_DCHECK(j < engines_.size());
  const int num_replicas = static_cast<int>(engines_[j].size());
  const uint64_t now_ns = dispatch.now_ns != 0
                              ? dispatch.now_ns
                              : chaos_now_ns_.load(std::memory_order_relaxed);
  const PimConfig& c = primary(0).device1().config();
  const uint64_t matrices = mode() == EngineMode::kSegmentFnn ? 2 : 1;
  const uint64_t retry_bytes = RetryOperandBytes(num_queries);
  const double retry_ns =
      static_cast<double>(matrices) * c.interconnect_hop_ns +
      static_cast<double>(retry_bytes) / c.interconnect_gbps;

  int failed = 0;
  uint64_t backoff_total = 0;
  double extra = 0.0;
  for (int r = 0; r < num_replicas; ++r) {
    if (failed > 0) {
      const uint64_t wait = FailoverBackoffNs(
          options_.shard.backoff_base_ns, options_.shard.backoff_jitter_ns,
          options_.shard.backoff_seed, BackoffToken(now_ns, j), failed);
      if (dispatch.deadline_ns != 0 &&
          backoff_total + wait > dispatch.deadline_ns) {
        break;
      }
      backoff_total += wait;
      extra += static_cast<double>(wait) + retry_ns;
    }
    if (chaos_->LinkDown(static_cast<uint32_t>(j), now_ns) ||
        chaos_->ReplicaDown(static_cast<uint32_t>(j),
                            static_cast<uint32_t>(r), now_ns)) {
      ++failed;
      continue;
    }
    plan.serving_replica = r;
    plan.failed_attempts = failed;
    plan.backoff_ns = backoff_total;
    plan.extra_ns = extra;
    return plan;
  }
  plan.serving_replica = -1;
  plan.shed = true;
  plan.failed_attempts = failed;
  plan.backoff_ns = backoff_total;
  plan.extra_ns = extra;
  return plan;
}

uint64_t ShardedPimEngine::RetryOperandBytes(size_t num_queries) const {
  const PimEngine& e = primary(0);
  // Mirrors the operand width PrepareBatch quantizes into the scratch
  // buffers: segment-family engines carry one int per segment per query,
  // direct engines one per dimension, and the FNN bound carries a second
  // matrix of the same width.
  const uint64_t width = e.num_segments() > 0
                             ? static_cast<uint64_t>(e.num_segments())
                             : static_cast<uint64_t>(e.dims());
  uint64_t ints = width * static_cast<uint64_t>(num_queries);
  if (e.mode() == EngineMode::kSegmentFnn) ints *= 2;
  return ints * sizeof(int32_t);
}

double ShardedPimEngine::BoundFor(const QueryHandleBatch& batch, size_t query,
                                  size_t index) const {
  PIMINE_DCHECK(index < num_objects_);
  if (engines_.size() == 1) {
    return primary(0).BoundFor(batch.shards[0], query, index);
  }
  const uint32_t j = map_.shard_of[index];
  return primary(j).BoundFor(batch.shards[j], query, map_.local_of[index]);
}

Status ShardedPimEngine::AppendRows(const FloatMatrix& rows) {
  if (rows.rows() == 0) {
    return Status::InvalidArgument("AppendRows requires at least one row");
  }
  if (rows.cols() != dims()) {
    return Status::InvalidArgument("appended row dimensionality mismatch");
  }
  // Validate the whole batch BEFORE mutating any shard, so a bad row
  // cannot leave some replicas appended and others not.
  for (size_t i = 0; i < rows.rows(); ++i) {
    for (float v : rows.row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument(
            "appended rows must be normalized into [0, 1]");
      }
    }
  }
  const size_t m = engines_.size();
  // Round-robin placement by append sequence: group the batch's rows by
  // target shard preserving order, so each shard's slice is appended in
  // ascending global id.
  std::vector<std::vector<uint32_t>> picks(m);
  for (size_t b = 0; b < rows.rows(); ++b) {
    picks[(append_seq_ + b) % m].push_back(static_cast<uint32_t>(b));
  }
  for (size_t j = 0; j < m; ++j) {
    if (picks[j].empty()) continue;
    FloatMatrix part(picks[j].size(), rows.cols());
    for (size_t local = 0; local < picks[j].size(); ++local) {
      const auto src = rows.row(picks[j][local]);
      std::copy(src.begin(), src.end(), part.mutable_row(local).begin());
    }
    // Every replica is a physical copy of the shard: each one delta-
    // programs the slice (its own ProgramLatencyNs and endurance charge).
    for (const auto& e : engines_[j]) {
      PIMINE_RETURN_IF_ERROR(e->AppendRows(part));
    }
  }
  // Extend the global routing map. Appended ids exceed every existing id,
  // so pushing back keeps each shard's global-id list ascending — the
  // shard-local physical order the engines just programmed.
  for (size_t b = 0; b < rows.rows(); ++b) {
    const uint32_t j = static_cast<uint32_t>((append_seq_ + b) % m);
    map_.rows_per_shard[j].push_back(
        static_cast<uint32_t>(num_objects_ + b));
    map_.shard_of.push_back(j);
    map_.local_of.push_back(
        static_cast<uint32_t>(map_.rows_per_shard[j].size() - 1));
  }
  append_seq_ += rows.rows();
  num_objects_ += rows.rows();
  mut_appended_rows_.fetch_add(rows.rows(), std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedPimEngine::DeleteRow(size_t index) {
  if (index >= num_objects_) {
    return Status::InvalidArgument("DeleteRow index out of range");
  }
  const uint32_t j = map_.shard_of[index];
  const uint32_t local = map_.local_of[index];
  // Replicas hold identical tombstone state, so the first call performs
  // all validation (out-of-range / double delete / last-live guard) before
  // mutating; later replicas cannot fail differently.
  for (const auto& e : engines_[j]) {
    PIMINE_RETURN_IF_ERROR(e->DeleteRow(local));
  }
  mut_deleted_rows_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool ShardedPimEngine::IsDeleted(size_t index) const {
  PIMINE_DCHECK(index < num_objects_);
  return primary(map_.shard_of[index]).IsDeleted(map_.local_of[index]);
}

Status ShardedPimEngine::Compact() {
  const size_t m = engines_.size();
  std::vector<std::vector<uint32_t>> live_local(m);
  for (size_t j = 0; j < m; ++j) {
    for (size_t r = 0; r < engines_[j].size(); ++r) {
      // Replica tombstone state is identical, so every replica compacts to
      // the same live list; keep the primary's for the map renumber.
      PIMINE_RETURN_IF_ERROR(
          engines_[j][r]->Compact(r == 0 ? &live_local[j] : nullptr));
    }
  }
  // Renumber survivors densely in ascending OLD global id — the ids a
  // from-scratch build of the merged live dataset would assign.
  std::vector<std::pair<uint32_t, uint32_t>> survivors;  // (old id, shard)
  for (size_t j = 0; j < m; ++j) {
    for (const uint32_t local : live_local[j]) {
      survivors.emplace_back(map_.rows_per_shard[j][local], j);
    }
  }
  std::sort(survivors.begin(), survivors.end());
  ShardMap next;
  next.rows_per_shard.resize(m);
  next.shard_of.resize(survivors.size());
  next.local_of.resize(survivors.size());
  for (size_t id = 0; id < survivors.size(); ++id) {
    const uint32_t j = survivors[id].second;
    // The monotone renumber preserves each shard's ascending order, so the
    // new local index matches the position the shard engine's compaction
    // moved the row to.
    next.rows_per_shard[j].push_back(static_cast<uint32_t>(id));
    next.shard_of[id] = j;
    next.local_of[id] =
        static_cast<uint32_t>(next.rows_per_shard[j].size() - 1);
  }
  map_ = std::move(next);
  num_objects_ = survivors.size();
  mut_compactions_.fetch_add(1, std::memory_order_relaxed);
  mut_compacted_rows_.fetch_add(survivors.size(), std::memory_order_relaxed);
  return Status::OK();
}

size_t ShardedPimEngine::live_objects() const {
  size_t live = 0;
  for (size_t j = 0; j < engines_.size(); ++j) live += primary(j).live_objects();
  return live;
}

size_t ShardedPimEngine::delta_objects() const {
  size_t delta = 0;
  for (size_t j = 0; j < engines_.size(); ++j) {
    delta += primary(j).delta_objects();
  }
  return delta;
}

size_t ShardedPimEngine::tombstoned_objects() const {
  return num_objects_ - live_objects();
}

int ShardedPimEngine::serving_replica(size_t j) const {
  PIMINE_DCHECK(j < shard_counters_.size());
  return static_cast<int>(
      shard_counters_[j]->serving_replica.load(std::memory_order_relaxed));
}

bool ShardedPimEngine::shard_slack_mode(size_t j) const {
  PIMINE_DCHECK(j < shard_counters_.size());
  return shard_counters_[j]->slack_mode.load(std::memory_order_relaxed);
}

int ShardedPimEngine::replica_strikes(size_t j, size_t r) const {
  PIMINE_DCHECK(j < replica_state_.size());
  PIMINE_DCHECK(r < replica_state_[j].size());
  return static_cast<int>(
      replica_state_[j][r]->strikes.load(std::memory_order_relaxed));
}

bool ShardedPimEngine::replica_out(size_t j, size_t r) const {
  PIMINE_DCHECK(j < replica_state_.size());
  PIMINE_DCHECK(r < replica_state_[j].size());
  return replica_state_[j][r]->out.load(std::memory_order_acquire);
}

bool ShardedPimEngine::shard_degraded(size_t j) const {
  if (serving_replica(j) != 0 || shard_slack_mode(j)) return true;
  for (size_t r = 0; r < replica_state_[j].size(); ++r) {
    if (replica_out(j, r)) return true;
  }
  return false;
}

int ShardedPimEngine::DegradedShards() const {
  int degraded = 0;
  for (size_t j = 0; j < engines_.size(); ++j) {
    if (shard_degraded(j)) ++degraded;
  }
  return degraded;
}

void ShardedPimEngine::ResetReplicaHealth() {
  for (const auto& shard : replica_state_) {
    for (const auto& rs : shard) {
      rs->strikes.store(0, std::memory_order_relaxed);
      rs->out.store(false, std::memory_order_release);
    }
  }
}

double ShardedPimEngine::PimComputeNs() const {
  // A shard's replicas serve it one at a time (failed attempts serialize
  // with the eventual success), so a shard's figure is the sum over its
  // replicas; the shards run concurrently, so the fleet figure is the max
  // over shards. Clean runs charge only the primary — identical to the
  // pre-replica fleet.
  double ns = 0.0;
  for (const auto& shard : engines_) {
    double shard_ns = 0.0;
    for (const auto& e : shard) shard_ns += e->PimComputeNs();
    ns = std::max(ns, shard_ns);
  }
  return ns;
}

double ShardedPimEngine::PimPipelinedNs() const {
  double ns = 0.0;
  for (const auto& shard : engines_) {
    double shard_ns = 0.0;
    for (const auto& e : shard) shard_ns += e->PimPipelinedNs();
    ns = std::max(ns, shard_ns);
  }
  return ns;
}

FaultStats ShardedPimEngine::FaultStatsTotal() const {
  FaultStats total;
  for (const auto& shard : engines_) {
    for (const auto& e : shard) total.Merge(e->FaultStatsTotal());
  }
  return total;
}

double ShardedPimEngine::OfflineNs() const {
  // Every copy (shard x replica) programs concurrently: max over all.
  double ns = 0.0;
  for (const auto& shard : engines_) {
    for (const auto& e : shard) ns = std::max(ns, e->OfflineNs());
  }
  return ns;
}

uint64_t ShardedPimEngine::OfflineBytesWritten() const {
  // Every replica is a physical copy: programming bytes sum over all.
  uint64_t bytes = 0;
  for (const auto& shard : engines_) {
    for (const auto& e : shard) bytes += e->OfflineBytesWritten();
  }
  return bytes;
}

void ShardedPimEngine::ResetOnlineStats() {
  for (const auto& shard : engines_) {
    for (const auto& e : shard) e->ResetOnlineStats();
  }
  for (const auto& ctr : shard_counters_) {
    ctr->scatter_messages.store(0, std::memory_order_relaxed);
    ctr->scatter_bytes.store(0, std::memory_order_relaxed);
    ctr->gather_messages.store(0, std::memory_order_relaxed);
    ctr->gather_bytes.store(0, std::memory_order_relaxed);
    ctr->failovers.store(0, std::memory_order_relaxed);
    ctr->failed_over_queries.store(0, std::memory_order_relaxed);
    ctr->fo_injected.store(0, std::memory_order_relaxed);
    ctr->fo_recovered.store(0, std::memory_order_relaxed);
    ctr->fo_shed.store(0, std::memory_order_relaxed);
    ctr->fo_attempts_failed.store(0, std::memory_order_relaxed);
    ctr->fo_chaos_denied.store(0, std::memory_order_relaxed);
    ctr->fo_device_faults.store(0, std::memory_order_relaxed);
    ctr->fo_strikes.store(0, std::memory_order_relaxed);
    ctr->fo_struck_out.store(0, std::memory_order_relaxed);
    ctr->fo_slack_fills.store(0, std::memory_order_relaxed);
    ctr->fo_retry_messages.store(0, std::memory_order_relaxed);
    ctr->fo_retry_bytes.store(0, std::memory_order_relaxed);
    ctr->fo_backoff_ns.store(0, std::memory_order_relaxed);
    ctr->serving_replica.store(0, std::memory_order_relaxed);
    ctr->slack_mode.store(false, std::memory_order_relaxed);
  }
  reduce_messages_.store(0, std::memory_order_relaxed);
  reduce_bytes_.store(0, std::memory_order_relaxed);
}

FleetRunStats ShardedPimEngine::FleetStats() const {
  FleetRunStats s;
  s.shards = static_cast<int>(engines_.size());
  s.placement = options_.shard.placement;
  // Interconnect/failover totals are the exact sums of the per-shard
  // counters (integer addition; identical to the former fleet-level
  // fetch_adds for any charge interleaving).
  const PimConfig& c = primary(0).device1().config();
  for (const auto& ctr : shard_counters_) {
    s.scatter_messages +=
        ctr->scatter_messages.load(std::memory_order_relaxed);
    s.scatter_bytes += ctr->scatter_bytes.load(std::memory_order_relaxed);
    s.gather_messages +=
        ctr->gather_messages.load(std::memory_order_relaxed);
    s.gather_bytes += ctr->gather_bytes.load(std::memory_order_relaxed);
    s.failovers += ctr->failovers.load(std::memory_order_relaxed);
    s.failed_over_queries +=
        ctr->failed_over_queries.load(std::memory_order_relaxed);
    s.failover.Merge(LoadFailover(*ctr, c));
  }
  s.reduce_messages = reduce_messages_.load(std::memory_order_relaxed);
  s.reduce_bytes = reduce_bytes_.load(std::memory_order_relaxed);
  s.degraded_shards = DegradedShards();
  // Derived at snapshot time from the integer counters: summing
  // TransferLatencyNs per message == messages * hop_ns + bytes / gbps, so
  // the figures are independent of charge interleaving.
  const auto class_ns = [&c](uint64_t messages, uint64_t bytes) {
    return static_cast<double>(messages) * c.interconnect_hop_ns +
           static_cast<double>(bytes) / c.interconnect_gbps;
  };
  s.scatter_ns = class_ns(s.scatter_messages, s.scatter_bytes);
  s.gather_ns = class_ns(s.gather_messages, s.gather_bytes);
  s.reduce_ns = class_ns(s.reduce_messages, s.reduce_bytes);
  s.appended_rows = mut_appended_rows_.load(std::memory_order_relaxed);
  s.deleted_rows = mut_deleted_rows_.load(std::memory_order_relaxed);
  s.compactions = mut_compactions_.load(std::memory_order_relaxed);
  s.compacted_rows = mut_compacted_rows_.load(std::memory_order_relaxed);
  s.delta_rows = delta_objects();
  s.tombstoned_rows = tombstoned_objects();
  // Endurance sums over every device copy: replicas are physical devices,
  // each wearing its own cells.
  for (const auto& shard : engines_) {
    for (const auto& e : shard) {
      const PimDeviceStats s1 = e->device1().StatsSnapshot();
      s.row_writes += s1.row_writes;
      s.worn_rows += s1.worn_rows;
      if (e->device2() != nullptr) {
        const PimDeviceStats s2 = e->device2()->StatsSnapshot();
        s.row_writes += s2.row_writes;
        s.worn_rows += s2.worn_rows;
      }
    }
  }
  return s;
}

ShardedPimEngine::ShardHealth ShardedPimEngine::ShardHealthSnapshot(
    size_t j) const {
  PIMINE_DCHECK(j < engines_.size());
  ShardHealth h;
  const ShardCounters& ctr = *shard_counters_[j];
  h.scatter_messages = ctr.scatter_messages.load(std::memory_order_relaxed);
  h.scatter_bytes = ctr.scatter_bytes.load(std::memory_order_relaxed);
  h.gather_messages = ctr.gather_messages.load(std::memory_order_relaxed);
  h.gather_bytes = ctr.gather_bytes.load(std::memory_order_relaxed);
  h.failovers = ctr.failovers.load(std::memory_order_relaxed);
  h.failed_over_queries =
      ctr.failed_over_queries.load(std::memory_order_relaxed);
  const PimConfig& c = primary(0).device1().config();
  const auto class_ns = [&c](uint64_t messages, uint64_t bytes) {
    return static_cast<double>(messages) * c.interconnect_hop_ns +
           static_cast<double>(bytes) / c.interconnect_gbps;
  };
  h.scatter_ns = class_ns(h.scatter_messages, h.scatter_bytes);
  h.gather_ns = class_ns(h.gather_messages, h.gather_bytes);
  // Device accounting sums over the shard's replicas: a failed attempt's
  // pass charges the replica it ran on.
  for (const auto& e : engines_[j]) {
    const PimDeviceStats s1 = e->device1().StatsSnapshot();
    h.batch_ops += s1.batch_ops;
    h.queries_processed += s1.queries_processed;
    h.pim_ns += s1.compute_ns;
    h.pipelined_ns += s1.pipelined_ns;
    h.fault.Merge(s1.fault);
    if (e->device2() != nullptr) {
      const PimDeviceStats s2 = e->device2()->StatsSnapshot();
      h.batch_ops += s2.batch_ops;
      h.queries_processed += s2.queries_processed;
      h.pim_ns += s2.compute_ns;
      h.pipelined_ns += s2.pipelined_ns;
      h.fault.Merge(s2.fault);
    }
  }
  h.failover = LoadFailover(ctr, c);
  h.serving_replica =
      static_cast<int>(ctr.serving_replica.load(std::memory_order_relaxed));
  h.degraded = shard_degraded(j);
  return h;
}

void ShardedPimEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  obs::MetricsRegistry& r = *registry;
  r.SetHelp("pimine_fleet_shards", "Fleet members the dataset is sharded across.");
  r.SetHelp("pimine_fleet_replicas",
            "Replica copies each shard is programmed onto.");
  r.SetHelp("pimine_fleet_degraded_shards",
            "Shards serving off-primary, in bound-slack mode, or carrying a "
            "struck-out replica.");
  r.SetHelp("pimine_fleet_shard_scatter_messages_total",
            "Operand broadcast messages received by this shard.");
  r.SetHelp("pimine_fleet_shard_scatter_bytes_total",
            "Operand bytes received by this shard.");
  r.SetHelp("pimine_fleet_shard_gather_messages_total",
            "Result messages returned by this shard.");
  r.SetHelp("pimine_fleet_shard_gather_bytes_total",
            "Result bytes returned by this shard.");
  r.SetHelp("pimine_fleet_shard_scatter_ns",
            "Modeled scatter transfer time charged to this shard.");
  r.SetHelp("pimine_fleet_shard_gather_ns",
            "Modeled gather transfer time charged to this shard.");
  r.SetHelp("pimine_fleet_shard_failovers_total",
            "Off-device escalations after the replica ladder was exhausted.");
  r.SetHelp("pimine_fleet_shard_failed_over_queries_total",
            "Queries served off-device on this shard.");
  r.SetHelp("pimine_fleet_shard_batch_ops_total",
            "Device batch operations issued on this shard.");
  r.SetHelp("pimine_fleet_shard_queries_total",
            "Queries matched by this shard's devices.");
  r.SetHelp("pimine_fleet_shard_pim_ns",
            "Serial-equivalent modeled device compute time of this shard.");
  r.SetHelp("pimine_fleet_shard_pipelined_ns",
            "Modeled pipelined device occupancy of this shard.");
  r.SetHelp("pimine_fleet_shard_faults_injected_total",
            "Transient faults injected into this shard's devices.");
  r.SetHelp("pimine_fleet_shard_faults_detected_total",
            "Faults caught by checksum verification on this shard.");
  r.SetHelp("pimine_fleet_shard_faults_escaped_total",
            "Faults that escaped verification on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_retries_total",
            "Recovery retries performed on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_remapped_rows_total",
            "Rows remapped to spare crossbar rows on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_recovery_ns",
            "Modeled fault-recovery time spent on this shard.");
  r.SetHelp("pimine_failover_injected_total",
            "Shard-dispatch ops that lost at least one replica attempt.");
  r.SetHelp("pimine_failover_recovered_total",
            "Injected ops completed on a later healthy replica.");
  r.SetHelp("pimine_failover_shed_total",
            "Injected ops escalated off-device (host-exact or bound-slack).");
  r.SetHelp("pimine_failover_attempts_failed_total",
            "Individual replica attempts that failed on this shard.");
  r.SetHelp("pimine_failover_chaos_denied_total",
            "Replica attempts denied by the chaos schedule.");
  r.SetHelp("pimine_failover_device_faults_total",
            "Replica attempts lost to an unrecoverable device fault.");
  r.SetHelp("pimine_failover_strikes_total",
            "Strikes recorded against this shard's replicas.");
  r.SetHelp("pimine_failover_struck_out_total",
            "Replicas struck out of this shard's ladder.");
  r.SetHelp("pimine_failover_slack_fills_total",
            "Shed ops served as bound-slack fills on this shard.");
  r.SetHelp("pimine_failover_retry_messages_total",
            "Operand re-scatter messages to retry replicas.");
  r.SetHelp("pimine_failover_retry_bytes_total",
            "Operand re-scatter bytes to retry replicas.");
  r.SetHelp("pimine_failover_backoff_ns_total",
            "Seeded backoff waited between replica attempts.");
  r.SetHelp("pimine_fleet_shard_failover_ns",
            "Modeled failover time of this shard (retry transfer + backoff).");
  r.SetHelp("pimine_fleet_shard_serving_replica",
            "Replica that served this shard's most recent dispatch "
            "(replicas = off-device).");
  r.SetHelp("pimine_fleet_reduce_messages_total",
            "Tree-reduction messages on the fleet critical path.");
  r.SetHelp("pimine_fleet_reduce_bytes_total",
            "Tree-reduction payload bytes on the fleet critical path.");
  r.GetGauge("pimine_fleet_shards")
      .Set(static_cast<double>(engines_.size()));
  r.GetGauge("pimine_fleet_replicas")
      .Set(static_cast<double>(options_.shard.replicas));
  r.GetGauge("pimine_fleet_degraded_shards")
      .Set(static_cast<double>(DegradedShards()));
  for (size_t j = 0; j < engines_.size(); ++j) {
    const ShardHealth h = ShardHealthSnapshot(j);
    const obs::MetricLabels labels = {{"shard", std::to_string(j)}};
    const auto count = [&](const char* family, uint64_t value) {
      obs::Counter& ctr = r.GetCounter(family, labels);
      ctr.Reset();
      ctr.Add(value);
    };
    count("pimine_fleet_shard_scatter_messages_total", h.scatter_messages);
    count("pimine_fleet_shard_scatter_bytes_total", h.scatter_bytes);
    count("pimine_fleet_shard_gather_messages_total", h.gather_messages);
    count("pimine_fleet_shard_gather_bytes_total", h.gather_bytes);
    count("pimine_fleet_shard_failovers_total", h.failovers);
    count("pimine_fleet_shard_failed_over_queries_total",
          h.failed_over_queries);
    count("pimine_fleet_shard_batch_ops_total", h.batch_ops);
    count("pimine_fleet_shard_queries_total", h.queries_processed);
    count("pimine_fleet_shard_faults_injected_total", h.fault.injected);
    count("pimine_fleet_shard_faults_detected_total", h.fault.detected);
    count("pimine_fleet_shard_faults_escaped_total", h.fault.escaped);
    count("pimine_fleet_shard_fault_retries_total", h.fault.retries);
    count("pimine_fleet_shard_fault_remapped_rows_total",
          h.fault.remapped_rows);
    count("pimine_failover_injected_total", h.failover.injected);
    count("pimine_failover_recovered_total", h.failover.recovered);
    count("pimine_failover_shed_total", h.failover.shed);
    count("pimine_failover_attempts_failed_total",
          h.failover.attempts_failed);
    count("pimine_failover_chaos_denied_total", h.failover.chaos_denied);
    count("pimine_failover_device_faults_total", h.failover.device_faults);
    count("pimine_failover_strikes_total", h.failover.strikes);
    count("pimine_failover_struck_out_total", h.failover.struck_out);
    count("pimine_failover_slack_fills_total", h.failover.slack_fills);
    count("pimine_failover_retry_messages_total", h.failover.retry_messages);
    count("pimine_failover_retry_bytes_total", h.failover.retry_bytes);
    count("pimine_failover_backoff_ns_total", h.failover.backoff_ns);
    r.GetGauge("pimine_fleet_shard_scatter_ns", labels).Set(h.scatter_ns);
    r.GetGauge("pimine_fleet_shard_gather_ns", labels).Set(h.gather_ns);
    r.GetGauge("pimine_fleet_shard_pim_ns", labels).Set(h.pim_ns);
    r.GetGauge("pimine_fleet_shard_pipelined_ns", labels)
        .Set(h.pipelined_ns);
    r.GetGauge("pimine_fleet_shard_fault_recovery_ns", labels)
        .Set(h.fault.recovery_ns);
    r.GetGauge("pimine_fleet_shard_failover_ns", labels)
        .Set(h.failover.failover_ns);
    r.GetGauge("pimine_fleet_shard_serving_replica", labels)
        .Set(static_cast<double>(h.serving_replica));
  }
  const auto fleet_count = [&](const char* family, uint64_t value) {
    obs::Counter& ctr = r.GetCounter(family);
    ctr.Reset();
    ctr.Add(value);
  };
  fleet_count("pimine_fleet_reduce_messages_total",
              reduce_messages_.load(std::memory_order_relaxed));
  fleet_count("pimine_fleet_reduce_bytes_total",
              reduce_bytes_.load(std::memory_order_relaxed));

  // Mutable-dataset plane (DESIGN.md section 13): fleet-level mutation
  // counters plus the current delta/tombstone backlog and the endurance
  // totals from FleetStats (summed over every device copy).
  r.SetHelp("pimine_mutation_appended_rows_total",
            "Rows appended to the fleet via delta programming.");
  r.SetHelp("pimine_mutation_deleted_rows_total",
            "Rows tombstoned on the fleet.");
  r.SetHelp("pimine_mutation_compactions_total",
            "Fleet-wide compaction passes (base + delta rewritten).");
  r.SetHelp("pimine_mutation_compacted_rows_total",
            "Live rows rewritten by compaction passes.");
  r.SetHelp("pimine_mutation_delta_rows",
            "Un-compacted delta rows currently programmed (primary copies).");
  r.SetHelp("pimine_mutation_tombstoned_rows",
            "Rows currently tombstoned (primary copies).");
  r.SetHelp("pimine_mutation_row_writes_total",
            "Row program operations summed over every device copy "
            "(write-endurance accounting).");
  r.SetHelp("pimine_mutation_worn_rows",
            "Rows past the configured write-endurance limit over every "
            "device copy.");
  const FleetRunStats fs = FleetStats();
  fleet_count("pimine_mutation_appended_rows_total", fs.appended_rows);
  fleet_count("pimine_mutation_deleted_rows_total", fs.deleted_rows);
  fleet_count("pimine_mutation_compactions_total", fs.compactions);
  fleet_count("pimine_mutation_compacted_rows_total", fs.compacted_rows);
  fleet_count("pimine_mutation_row_writes_total", fs.row_writes);
  r.GetGauge("pimine_mutation_delta_rows")
      .Set(static_cast<double>(fs.delta_rows));
  r.GetGauge("pimine_mutation_tombstoned_rows")
      .Set(static_cast<double>(fs.tombstoned_rows));
  r.GetGauge("pimine_mutation_worn_rows")
      .Set(static_cast<double>(fs.worn_rows));
}

void ShardedPimEngine::ChargeTreeReduction(uint64_t payload_bytes) const {
  const size_t m = engines_.size();
  if (m <= 1) return;
  // Critical path of a pairwise merge tree: ceil(log2 m) levels, one
  // payload-sized message per level.
  uint64_t depth = 0;
  for (size_t width = m; width > 1; width = (width + 1) / 2) ++depth;
  reduce_messages_.fetch_add(depth, std::memory_order_relaxed);
  reduce_bytes_.fetch_add(depth * payload_bytes, std::memory_order_relaxed);
}

std::vector<Neighbor> MergeShardTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, size_t k) {
  std::vector<Neighbor> all;
  for (const std::vector<Neighbor>& list : per_shard) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace pimine
