#include "core/sharded_engine.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace pimine {
namespace {

/// Decorrelates shard j's fault seed from shard 0's: independent physical
/// devices have independent fault patterns. Same mixer as the placement
/// hash (stateless, platform-independent).
uint64_t ShardSeedSalt(uint64_t j) {
  uint64_t x = j + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardMap TrivialShardMap(size_t n) {
  ShardMap map;
  map.rows_per_shard.resize(1);
  map.rows_per_shard[0].resize(n);
  std::iota(map.rows_per_shard[0].begin(), map.rows_per_shard[0].end(), 0u);
  map.shard_of.assign(n, 0);
  map.local_of = map.rows_per_shard[0];
  return map;
}

}  // namespace

Result<std::unique_ptr<ShardedPimEngine>> ShardedPimEngine::Build(
    const FloatMatrix& data, Distance distance, const EngineOptions& options) {
  auto fleet = std::unique_ptr<ShardedPimEngine>(new ShardedPimEngine());
  fleet->options_ = options;
  fleet->num_objects_ = data.rows();

  if (options.shard.shards == 1) {
    // Single device: exactly a PimEngine (same errors, stats and traces).
    PIMINE_ASSIGN_OR_RETURN(std::unique_ptr<PimEngine> engine,
                            PimEngine::Build(data, distance, options));
    fleet->plan_ = engine->plan();
    fleet->engines_.push_back(std::move(engine));
    fleet->map_ = TrivialShardMap(data.rows());
    fleet->shard_counters_.push_back(std::make_unique<ShardCounters>());
    return fleet;
  }

  PIMINE_ASSIGN_OR_RETURN(fleet->map_, BuildShardMap(data, options.shard));
  if (distance == Distance::kHamming) {
    return Status::InvalidArgument(
        "use PimHammingEngine for binary-code workloads");
  }
  const int64_t n = static_cast<int64_t>(data.rows());
  const int64_t d = static_cast<int64_t>(data.cols());

  // Resolve the bound family and segment geometry on the FULL dataset,
  // replicating PimEngine::Build's selection (including its capacity
  // errors), then force the outcome on every shard: a shard's smaller plan
  // must not change the bound function, or results would depend on M.
  EngineOptions shard_options = options;
  shard_options.shard = ShardOptions();  // each member is one device.
  if (distance == Distance::kCosine || distance == Distance::kPearson) {
    if (options.bound != EngineOptions::Bound::kAuto) {
      return Status::InvalidArgument(
          "CS/PCC engines only support the automatic bound");
    }
    PIMINE_ASSIGN_OR_RETURN(fleet->plan_,
                            PlanPimLayout(n, d, options.operand_bits, 1,
                                          options.pim_config));
    if (fleet->plan_.compressed) {
      return Status::CapacityExceeded(
          "CS/PCC require the full-dimensionality dataset on PIM; "
          "enlarge the PIM array");
    }
  } else {
    EngineOptions::Bound bound = options.bound;
    MemoryPlan plan;
    if (bound == EngineOptions::Bound::kAuto) {
      PIMINE_ASSIGN_OR_RETURN(plan, PlanPimLayout(n, d, options.operand_bits,
                                                  1, options.pim_config));
      bound = plan.compressed ? EngineOptions::Bound::kSegmentFnn
                              : EngineOptions::Bound::kDirectEd;
    }
    switch (bound) {
      case EngineOptions::Bound::kDirectEd: {
        PIMINE_ASSIGN_OR_RETURN(plan,
                                PlanPimLayout(n, d, options.operand_bits, 1,
                                              options.pim_config));
        if (plan.compressed) {
          return Status::CapacityExceeded(
              "full-dimensionality LB_PIM-ED does not fit; use a segment "
              "bound");
        }
        shard_options.bound = EngineOptions::Bound::kDirectEd;
        break;
      }
      case EngineOptions::Bound::kSegmentFnn:
      case EngineOptions::Bound::kSegmentSm: {
        const int copies = bound == EngineOptions::Bound::kSegmentFnn ? 2 : 1;
        PIMINE_ASSIGN_OR_RETURN(plan,
                                PlanPimLayout(n, d, options.operand_bits,
                                              copies, options.pim_config));
        int64_t s = std::min(plan.s, std::max<int64_t>(1, d / 4));
        if (options.force_segments > 0) {
          if (options.force_segments > plan.s) {
            return Status::CapacityExceeded(
                "forced segment count exceeds the Theorem 4 maximum");
          }
          s = options.force_segments;
        }
        plan.s = s;
        plan.compressed = s < d;
        shard_options.bound = bound;
        shard_options.force_segments = s;
        break;
      }
      case EngineOptions::Bound::kAuto:
        return Status::Internal("unreachable engine bound selection");
    }
    fleet->plan_ = plan;
  }

  fleet->engines_.resize(fleet->map_.shards());
  for (size_t j = 0; j < fleet->map_.shards(); ++j) {
    const std::vector<uint32_t>& rows = fleet->map_.rows_per_shard[j];
    FloatMatrix shard_data(rows.size(), static_cast<size_t>(d));
    for (size_t local = 0; local < rows.size(); ++local) {
      const auto src = data.row(rows[local]);
      std::copy(src.begin(), src.end(),
                shard_data.mutable_row(local).begin());
    }
    EngineOptions ej = shard_options;
    if (j > 0) ej.fault_config.seed ^= ShardSeedSalt(j);
    PIMINE_ASSIGN_OR_RETURN(fleet->engines_[j],
                            PimEngine::Build(shard_data, distance, ej));
  }
  fleet->shard_counters_.reserve(fleet->engines_.size());
  for (size_t j = 0; j < fleet->engines_.size(); ++j) {
    fleet->shard_counters_.push_back(std::make_unique<ShardCounters>());
  }
  return fleet;
}

Result<ShardedPimEngine::QueryHandleBatch> ShardedPimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries) const {
  QueryScratch scratch;
  return RunQueryBatch(queries, num_queries, &scratch);
}

Result<ShardedPimEngine::QueryHandleBatch> ShardedPimEngine::RunQueryBatch(
    std::span<const float> queries, size_t num_queries,
    QueryScratch* scratch) const {
  QueryHandleBatch out;
  PIMINE_RETURN_IF_ERROR(RunQueryBatch(queries, num_queries, scratch, &out));
  return out;
}

Status ShardedPimEngine::RunQueryBatch(std::span<const float> queries,
                                       size_t num_queries,
                                       QueryScratch* scratch,
                                       QueryHandleBatch* result) const {
  if (result == nullptr) {
    return Status::InvalidArgument(
        "RunQueryBatch requires a non-null batch handle");
  }
  QueryHandleBatch& out = *result;
  out.num_queries = num_queries;
  out.shards.resize(engines_.size());
  // A reused handle may carry state from a previous dispatch; clear what
  // DeviceBatch only fills conditionally so "empty" keeps meaning "clean".
  for (PimEngine::QueryHandleBatch& h : out.shards) {
    h.dots2.clear();
    h.suspect1.clear();
    h.suspect2.clear();
  }
  // Query-side work (validation, scalars, quantization) happens ONCE on
  // shard 0's engine — every shard shares the quantizer and geometry, so
  // the prepared operands serve the whole fleet and the host traffic stays
  // identical to the single-device run.
  PIMINE_RETURN_IF_ERROR(
      engines_[0]->PrepareBatch(queries, num_queries, scratch,
                                &out.shards[0]));
  if (engines_.size() == 1) {
    return engines_[0]->DeviceBatch(*scratch, num_queries, &out.shards[0]);
  }

  const size_t m = engines_.size();
  for (size_t j = 1; j < m; ++j) {
    PimEngine::QueryHandleBatch& h = out.shards[j];
    h.num_queries = num_queries;
    h.phi_q = out.shards[0].phi_q;
    h.sum_floor_q = out.shards[0].sum_floor_q;
    h.norm_q = out.shards[0].norm_q;
    h.phi_b_q = out.shards[0].phi_b_q;
  }

  // Scatter: every shard matches the same prepared operands against its
  // rows. Per-query trace spans are suppressed in the per-shard calls and
  // emitted once below — the shards run concurrently, so the fleet's
  // serial-equivalent per-query device time is one pass, not M.
  std::vector<Status> status(m, Status::OK());
  ParallelChunks(fanout_policy_, m, 1,
                 [&](size_t begin, size_t end, size_t /*slot*/) {
                   for (size_t j = begin; j < end; ++j) {
                     status[j] = engines_[j]->DeviceBatch(
                         *scratch, num_queries, &out.shards[j],
                         /*emit_query_spans=*/false);
                   }
                 });
  for (size_t j = 0; j < m; ++j) {
    if (status[j].ok()) continue;
    if (status[j].code() == StatusCode::kDeviceFault &&
        options_.shard.failover) {
      // Per-shard fail-over: the faulted shard escalates to a host-exact
      // recompute of only its rows; healthy shards keep their results.
      PIMINE_RETURN_IF_ERROR(engines_[j]->HostRecomputeBatch(
          *scratch, num_queries, &out.shards[j]));
      shard_counters_[j]->failovers.fetch_add(1, std::memory_order_relaxed);
      shard_counters_[j]->failed_over_queries.fetch_add(
          num_queries, std::memory_order_relaxed);
      continue;
    }
    return status[j];
  }

  // Interconnect accounting: one broadcast message per shard per device
  // matrix carrying the batch operands, one gather message per shard per
  // device matrix carrying that shard's results.
  const bool with_stds = mode() == EngineMode::kSegmentFnn;
  const uint64_t matrices = with_stds ? 2 : 1;
  const uint64_t operand_bytes =
      (scratch->ints.size() + scratch->ints2.size()) * sizeof(int32_t);
  // Charged to the shard each message terminates at: every shard receives
  // one operand broadcast per device matrix and returns one result message
  // per device matrix carrying its own dot products. Totals over shards
  // equal the former fleet-level charges exactly.
  for (size_t j = 0; j < m; ++j) {
    const PimEngine::QueryHandleBatch& h = out.shards[j];
    ShardCounters& ctr = *shard_counters_[j];
    ctr.scatter_messages.fetch_add(matrices, std::memory_order_relaxed);
    ctr.scatter_bytes.fetch_add(operand_bytes, std::memory_order_relaxed);
    ctr.gather_messages.fetch_add(matrices, std::memory_order_relaxed);
    ctr.gather_bytes.fetch_add(
        (h.dots1.size() + h.dots2.size()) * sizeof(uint64_t),
        std::memory_order_relaxed);
  }

  // One serial-equivalent set of per-query device spans, identical to the
  // single-device trace (pass latency is row-count independent).
  if (obs::Obs* const o = obs::Obs::Get()) {
    const double dot_ns = engines_[0]->device1().SerialDotNsPerQuery();
    const double dot2_ns =
        with_stds ? engines_[0]->device2()->SerialDotNsPerQuery() : 0.0;
    for (size_t q = 0; q < num_queries; ++q) {
      const int64_t track = obs::TrackFor(static_cast<int64_t>(q));
      o->trace().Complete("engine", "pim_dot", track, dot_ns);
      if (with_stds) {
        o->trace().Complete("engine", "pim_dot2", track, dot2_ns);
      }
    }
  }
  return Status::OK();
}

double ShardedPimEngine::BoundFor(const QueryHandleBatch& batch, size_t query,
                                  size_t index) const {
  PIMINE_DCHECK(index < num_objects_);
  if (engines_.size() == 1) {
    return engines_[0]->BoundFor(batch.shards[0], query, index);
  }
  const uint32_t j = map_.shard_of[index];
  return engines_[j]->BoundFor(batch.shards[j], query, map_.local_of[index]);
}

double ShardedPimEngine::PimComputeNs() const {
  double ns = 0.0;
  for (const auto& e : engines_) ns = std::max(ns, e->PimComputeNs());
  return ns;
}

double ShardedPimEngine::PimPipelinedNs() const {
  double ns = 0.0;
  for (const auto& e : engines_) ns = std::max(ns, e->PimPipelinedNs());
  return ns;
}

FaultStats ShardedPimEngine::FaultStatsTotal() const {
  FaultStats total;
  for (const auto& e : engines_) total.Merge(e->FaultStatsTotal());
  return total;
}

double ShardedPimEngine::OfflineNs() const {
  double ns = 0.0;
  for (const auto& e : engines_) ns = std::max(ns, e->OfflineNs());
  return ns;
}

uint64_t ShardedPimEngine::OfflineBytesWritten() const {
  uint64_t bytes = 0;
  for (const auto& e : engines_) bytes += e->OfflineBytesWritten();
  return bytes;
}

void ShardedPimEngine::ResetOnlineStats() {
  for (const auto& e : engines_) e->ResetOnlineStats();
  for (const auto& ctr : shard_counters_) {
    ctr->scatter_messages.store(0, std::memory_order_relaxed);
    ctr->scatter_bytes.store(0, std::memory_order_relaxed);
    ctr->gather_messages.store(0, std::memory_order_relaxed);
    ctr->gather_bytes.store(0, std::memory_order_relaxed);
    ctr->failovers.store(0, std::memory_order_relaxed);
    ctr->failed_over_queries.store(0, std::memory_order_relaxed);
  }
  reduce_messages_.store(0, std::memory_order_relaxed);
  reduce_bytes_.store(0, std::memory_order_relaxed);
}

FleetRunStats ShardedPimEngine::FleetStats() const {
  FleetRunStats s;
  s.shards = static_cast<int>(engines_.size());
  s.placement = options_.shard.placement;
  // Interconnect/failover totals are the exact sums of the per-shard
  // counters (integer addition; identical to the former fleet-level
  // fetch_adds for any charge interleaving).
  for (const auto& ctr : shard_counters_) {
    s.scatter_messages +=
        ctr->scatter_messages.load(std::memory_order_relaxed);
    s.scatter_bytes += ctr->scatter_bytes.load(std::memory_order_relaxed);
    s.gather_messages +=
        ctr->gather_messages.load(std::memory_order_relaxed);
    s.gather_bytes += ctr->gather_bytes.load(std::memory_order_relaxed);
    s.failovers += ctr->failovers.load(std::memory_order_relaxed);
    s.failed_over_queries +=
        ctr->failed_over_queries.load(std::memory_order_relaxed);
  }
  s.reduce_messages = reduce_messages_.load(std::memory_order_relaxed);
  s.reduce_bytes = reduce_bytes_.load(std::memory_order_relaxed);
  // Derived at snapshot time from the integer counters: summing
  // TransferLatencyNs per message == messages * hop_ns + bytes / gbps, so
  // the figures are independent of charge interleaving.
  const PimConfig& c = engines_[0]->device1().config();
  const auto class_ns = [&c](uint64_t messages, uint64_t bytes) {
    return static_cast<double>(messages) * c.interconnect_hop_ns +
           static_cast<double>(bytes) / c.interconnect_gbps;
  };
  s.scatter_ns = class_ns(s.scatter_messages, s.scatter_bytes);
  s.gather_ns = class_ns(s.gather_messages, s.gather_bytes);
  s.reduce_ns = class_ns(s.reduce_messages, s.reduce_bytes);
  return s;
}

ShardedPimEngine::ShardHealth ShardedPimEngine::ShardHealthSnapshot(
    size_t j) const {
  PIMINE_DCHECK(j < engines_.size());
  ShardHealth h;
  const ShardCounters& ctr = *shard_counters_[j];
  h.scatter_messages = ctr.scatter_messages.load(std::memory_order_relaxed);
  h.scatter_bytes = ctr.scatter_bytes.load(std::memory_order_relaxed);
  h.gather_messages = ctr.gather_messages.load(std::memory_order_relaxed);
  h.gather_bytes = ctr.gather_bytes.load(std::memory_order_relaxed);
  h.failovers = ctr.failovers.load(std::memory_order_relaxed);
  h.failed_over_queries =
      ctr.failed_over_queries.load(std::memory_order_relaxed);
  const PimConfig& c = engines_[0]->device1().config();
  const auto class_ns = [&c](uint64_t messages, uint64_t bytes) {
    return static_cast<double>(messages) * c.interconnect_hop_ns +
           static_cast<double>(bytes) / c.interconnect_gbps;
  };
  h.scatter_ns = class_ns(h.scatter_messages, h.scatter_bytes);
  h.gather_ns = class_ns(h.gather_messages, h.gather_bytes);
  const PimEngine& e = *engines_[j];
  const PimDeviceStats s1 = e.device1().StatsSnapshot();
  h.batch_ops = s1.batch_ops;
  h.queries_processed = s1.queries_processed;
  h.pim_ns = s1.compute_ns;
  h.pipelined_ns = s1.pipelined_ns;
  h.fault = s1.fault;
  if (e.device2() != nullptr) {
    const PimDeviceStats s2 = e.device2()->StatsSnapshot();
    h.batch_ops += s2.batch_ops;
    h.queries_processed += s2.queries_processed;
    h.pim_ns += s2.compute_ns;
    h.pipelined_ns += s2.pipelined_ns;
    h.fault.Merge(s2.fault);
  }
  return h;
}

void ShardedPimEngine::ExportMetrics(obs::MetricsRegistry* registry) const {
  obs::MetricsRegistry& r = *registry;
  r.SetHelp("pimine_fleet_shards", "Fleet members the dataset is sharded across.");
  r.SetHelp("pimine_fleet_shard_scatter_messages_total",
            "Operand broadcast messages received by this shard.");
  r.SetHelp("pimine_fleet_shard_scatter_bytes_total",
            "Operand bytes received by this shard.");
  r.SetHelp("pimine_fleet_shard_gather_messages_total",
            "Result messages returned by this shard.");
  r.SetHelp("pimine_fleet_shard_gather_bytes_total",
            "Result bytes returned by this shard.");
  r.SetHelp("pimine_fleet_shard_scatter_ns",
            "Modeled scatter transfer time charged to this shard.");
  r.SetHelp("pimine_fleet_shard_gather_ns",
            "Modeled gather transfer time charged to this shard.");
  r.SetHelp("pimine_fleet_shard_failovers_total",
            "Host-exact recomputes after an unrecovered device fault.");
  r.SetHelp("pimine_fleet_shard_failed_over_queries_total",
            "Queries served by host recompute on this shard.");
  r.SetHelp("pimine_fleet_shard_batch_ops_total",
            "Device batch operations issued on this shard.");
  r.SetHelp("pimine_fleet_shard_queries_total",
            "Queries matched by this shard's devices.");
  r.SetHelp("pimine_fleet_shard_pim_ns",
            "Serial-equivalent modeled device compute time of this shard.");
  r.SetHelp("pimine_fleet_shard_pipelined_ns",
            "Modeled pipelined device occupancy of this shard.");
  r.SetHelp("pimine_fleet_shard_faults_injected_total",
            "Transient faults injected into this shard's devices.");
  r.SetHelp("pimine_fleet_shard_faults_detected_total",
            "Faults caught by checksum verification on this shard.");
  r.SetHelp("pimine_fleet_shard_faults_escaped_total",
            "Faults that escaped verification on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_retries_total",
            "Recovery retries performed on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_remapped_rows_total",
            "Rows remapped to spare crossbar rows on this shard.");
  r.SetHelp("pimine_fleet_shard_fault_recovery_ns",
            "Modeled fault-recovery time spent on this shard.");
  r.SetHelp("pimine_fleet_reduce_messages_total",
            "Tree-reduction messages on the fleet critical path.");
  r.SetHelp("pimine_fleet_reduce_bytes_total",
            "Tree-reduction payload bytes on the fleet critical path.");
  r.GetGauge("pimine_fleet_shards")
      .Set(static_cast<double>(engines_.size()));
  for (size_t j = 0; j < engines_.size(); ++j) {
    const ShardHealth h = ShardHealthSnapshot(j);
    const obs::MetricLabels labels = {{"shard", std::to_string(j)}};
    const auto count = [&](const char* family, uint64_t value) {
      obs::Counter& ctr = r.GetCounter(family, labels);
      ctr.Reset();
      ctr.Add(value);
    };
    count("pimine_fleet_shard_scatter_messages_total", h.scatter_messages);
    count("pimine_fleet_shard_scatter_bytes_total", h.scatter_bytes);
    count("pimine_fleet_shard_gather_messages_total", h.gather_messages);
    count("pimine_fleet_shard_gather_bytes_total", h.gather_bytes);
    count("pimine_fleet_shard_failovers_total", h.failovers);
    count("pimine_fleet_shard_failed_over_queries_total",
          h.failed_over_queries);
    count("pimine_fleet_shard_batch_ops_total", h.batch_ops);
    count("pimine_fleet_shard_queries_total", h.queries_processed);
    count("pimine_fleet_shard_faults_injected_total", h.fault.injected);
    count("pimine_fleet_shard_faults_detected_total", h.fault.detected);
    count("pimine_fleet_shard_faults_escaped_total", h.fault.escaped);
    count("pimine_fleet_shard_fault_retries_total", h.fault.retries);
    count("pimine_fleet_shard_fault_remapped_rows_total",
          h.fault.remapped_rows);
    r.GetGauge("pimine_fleet_shard_scatter_ns", labels).Set(h.scatter_ns);
    r.GetGauge("pimine_fleet_shard_gather_ns", labels).Set(h.gather_ns);
    r.GetGauge("pimine_fleet_shard_pim_ns", labels).Set(h.pim_ns);
    r.GetGauge("pimine_fleet_shard_pipelined_ns", labels)
        .Set(h.pipelined_ns);
    r.GetGauge("pimine_fleet_shard_fault_recovery_ns", labels)
        .Set(h.fault.recovery_ns);
  }
  const auto fleet_count = [&](const char* family, uint64_t value) {
    obs::Counter& ctr = r.GetCounter(family);
    ctr.Reset();
    ctr.Add(value);
  };
  fleet_count("pimine_fleet_reduce_messages_total",
              reduce_messages_.load(std::memory_order_relaxed));
  fleet_count("pimine_fleet_reduce_bytes_total",
              reduce_bytes_.load(std::memory_order_relaxed));
}

void ShardedPimEngine::ChargeTreeReduction(uint64_t payload_bytes) const {
  const size_t m = engines_.size();
  if (m <= 1) return;
  // Critical path of a pairwise merge tree: ceil(log2 m) levels, one
  // payload-sized message per level.
  uint64_t depth = 0;
  for (size_t width = m; width > 1; width = (width + 1) / 2) ++depth;
  reduce_messages_.fetch_add(depth, std::memory_order_relaxed);
  reduce_bytes_.fetch_add(depth * payload_bytes, std::memory_order_relaxed);
}

std::vector<Neighbor> MergeShardTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, size_t k) {
  std::vector<Neighbor> all;
  for (const std::vector<Neighbor>& list : per_shard) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace pimine
