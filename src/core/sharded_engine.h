#ifndef PIMINE_CORE_SHARDED_ENGINE_H_
#define PIMINE_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "data/matrix.h"
#include "pim/chaos.h"
#include "pim/fleet.h"
#include "util/parallel.h"
#include "util/top_k.h"

namespace pimine {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// A fleet of PIM devices acting as one logical engine (DESIGN.md section
/// 9): the dataset is sharded across M per-shard PimEngines (ShardOptions
/// placement), each query batch is prepared once on the host, scattered to
/// every shard, matched in parallel, and the per-shard dot products are
/// gathered for the host's global combine. Only the device/transfer layer
/// is sharded — BoundFor routes one global object index to its shard's
/// results, so the host pipeline above (bounds, sort, refine) is untouched
/// and every functional result and grouping-invariant counter is
/// bit-identical to the single-device run for every M. What legitimately
/// varies with M is the new FleetRunStats scatter/gather/reduce accounting
/// (and the per-shard device batch_ops, like device_batch already does).
///
/// shards == 1 constructs exactly one PimEngine from the original options
/// and delegates wholesale: behaviour, traces and stats are those of a
/// plain PimEngine, trivially.
///
/// The geometry (bound family, segment count) is always resolved on the
/// FULL dataset, exactly as PimEngine::Build would, then forced on every
/// shard — a smaller shard must not pick a different Theorem 4 plan, or
/// results would depend on M.
class ShardedPimEngine {
 public:
  using QueryScratch = PimEngine::QueryScratch;

  /// One per-shard QueryHandleBatch per fleet member; BoundFor routes
  /// global object indices into them. size() == shards().
  struct QueryHandleBatch {
    size_t num_queries = 0;
    std::vector<PimEngine::QueryHandleBatch> shards;
  };

  static Result<std::unique_ptr<ShardedPimEngine>> Build(
      const FloatMatrix& data, Distance distance,
      const EngineOptions& options);

  /// One batched fleet operation: PrepareBatch once on the host (query-side
  /// scalars + quantized operands, charged exactly once), scatter the
  /// operands to every shard (one DeviceBatch per shard, fanned out under
  /// set_fanout_policy), gather the results. A shard failing with
  /// DeviceFault is escalated to a host-exact recompute of that shard when
  /// ShardOptions::failover is set. Bounds derived from the handle are
  /// bit-identical to the single-device engine's for every M.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries,
                                         QueryScratch* scratch) const;

  /// As above, allocating scratch internally.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries) const;

  /// Reusing variant: fills a caller-owned handle (per-shard sub-handles
  /// and all their buffers are reused across calls), the zero-allocation
  /// steady-state path of the serving scheduler's dispatch loop. Results
  /// and stats are identical to the by-value overload.
  Status RunQueryBatch(std::span<const float> queries, size_t num_queries,
                       QueryScratch* scratch, QueryHandleBatch* out) const;

  /// Per-dispatch context of the failover ladder. The default value is the
  /// plain overloads' behaviour (no chaos instant, host-exact shedding).
  struct DispatchOptions {
    /// Dispatch instant on the caller's clock (virtual ns in replay) the
    /// chaos schedule is evaluated at. 0 falls back to set_chaos_now_ns.
    uint64_t now_ns = 0;
    /// Degraded mode: when every replica of a shard is exhausted, serve
    /// the shard as a bound-slack fill (exact-after-refine) instead of a
    /// host-exact recompute — shedding modeled device work, not accuracy.
    bool slack_on_exhaustion = false;
    /// Ladder budget: cumulative seeded backoff one dispatch may spend
    /// walking a shard's replicas before the op sheds. 0 = unbounded.
    uint64_t deadline_ns = 0;
  };

  /// As the reusing overload, with explicit failover/chaos context. Every
  /// transition of the ladder — failed attempt, strike, recovery on a
  /// later replica, shed — lands in FailoverStats (FleetStats().failover,
  /// invariant injected == recovered + shed).
  Status RunQueryBatch(std::span<const float> queries, size_t num_queries,
                       QueryScratch* scratch, QueryHandleBatch* out,
                       const DispatchOptions& dispatch) const;

  /// What the chaos-availability ladder will do for shard `j` dispatched
  /// at `dispatch.now_ns`: the serving replica (or shed), the failed
  /// attempts walked past, and the modeled extra time (seeded backoff +
  /// operand re-scatter per retry). A PURE function of (chaos schedule,
  /// options, dispatch) — the virtual-clock scheduler extends each formed
  /// batch by the max over shards of extra_ns, and the executing ladder,
  /// walking the same dispatch, charges the identical waits. Replica
  /// strike state is deliberately NOT consulted: the timing model stays
  /// stateless (see DESIGN.md section 12).
  struct FailoverPlan {
    int serving_replica = 0;  // -1 when the op sheds off-device.
    int failed_attempts = 0;
    bool shed = false;
    uint64_t backoff_ns = 0;
    /// backoff_ns + modeled retry re-scatter transfer time.
    double extra_ns = 0.0;
  };
  FailoverPlan PlanFailover(size_t j, size_t num_queries,
                            const DispatchOptions& dispatch) const;

  // --- Chaos plane ------------------------------------------------------
  /// Installs a chaos schedule (owned by the caller, outliving the
  /// engine's use). nullptr (the default) disables availability faults
  /// entirely — bit-identical to the pre-chaos engine.
  void set_chaos(const ChaosSchedule* chaos) { chaos_ = chaos; }
  /// Fallback dispatch instant for callers without a per-dispatch clock
  /// (k-means iterations advance it once per BeginIteration).
  void set_chaos_now_ns(uint64_t now_ns) {
    chaos_now_ns_.store(now_ns, std::memory_order_relaxed);
  }
  const ChaosSchedule* chaos() const { return chaos_; }

  /// The bound for `batch` query `query` against GLOBAL object `index`:
  /// routed to shard_of(index) and combined there. Bit-identical to the
  /// single-device BoundFor.
  double BoundFor(const QueryHandleBatch& batch, size_t query,
                  size_t index) const;

  // --- Mutable datasets (DESIGN.md section 13) -------------------------
  /// Appends `rows` to the fleet. Each appended row is assigned the next
  /// global id (num_objects() before the call + its position) and routed
  /// round-robin over the shards by append sequence; the row is delta-
  /// programmed onto EVERY replica of its target shard, so replicas keep
  /// holding identical shard datasets. Because appended global ids exceed
  /// all existing ids, shard-local layouts stay ascending in global id and
  /// BoundFor routing stays bit-identical to a merged re-build. Mutations
  /// must be externally serialized against queries and other mutations
  /// (FleetStats snapshots stay safe); on error the fleet may be left
  /// partially mutated and should be discarded.
  Status AppendRows(const FloatMatrix& rows);
  /// Tombstones GLOBAL row `index` on every replica of its shard. Fails
  /// with InvalidArgument when out of range or already deleted, and with
  /// FailedPrecondition when it would empty a shard (every shard keeps at
  /// least one live row).
  Status DeleteRow(size_t index);
  /// Whether GLOBAL row `index` is tombstoned.
  bool IsDeleted(size_t index) const;
  /// Rewrites every shard's base + delta into a fresh dense base holding
  /// only live rows (full re-program at program cost on every replica) and
  /// renumbers global ids densely in ascending old-id order — identical to
  /// the ids of a from-scratch build of the merged live dataset.
  Status Compact();
  /// Rows not tombstoned / appended since the last full (re-)program /
  /// currently tombstoned, summed over the primary copies.
  size_t live_objects() const;
  size_t delta_objects() const;
  size_t tombstoned_objects() const;

  // --- Fleet geometry -------------------------------------------------
  size_t shards() const { return engines_.size(); }
  ShardPlacement placement() const { return options_.shard.placement; }
  const ShardMap& shard_map() const { return map_; }
  int replicas() const { return options_.shard.replicas; }
  /// The shard-j PRIMARY engine (tests / stats inspection).
  const PimEngine& shard_engine(size_t j) const { return *engines_[j][0]; }
  /// Replica r of shard j (tests / stats inspection).
  const PimEngine& replica_engine(size_t j, size_t r) const {
    return *engines_[j][r];
  }

  // --- Replica health ---------------------------------------------------
  /// Replica that served shard j's most recent dispatch (0 = primary;
  /// replicas() = the op shed off-device).
  int serving_replica(size_t j) const;
  /// Shard j's most recent dispatch was served as a bound-slack fill.
  bool shard_slack_mode(size_t j) const;
  /// Consecutive-failure strike count of replica r of shard j.
  int replica_strikes(size_t j, size_t r) const;
  /// Replica r of shard j has been struck out (skipped by the ladder).
  bool replica_out(size_t j, size_t r) const;
  /// Shard j is degraded: serving off its primary replica, in bound-slack
  /// mode, or carrying a struck-out replica.
  bool shard_degraded(size_t j) const;
  /// Number of degraded shards (the pimine_fleet_degraded_shards gauge and
  /// the /healthz "degraded" body are derived from this).
  int DegradedShards() const;
  /// Readmits every struck-out replica and clears strike counts (operator
  /// action after repairing devices). Does not touch accounting.
  void ResetReplicaHealth();

  // --- Pass-through accessors (identical across shards) ---------------
  EngineMode mode() const { return primary(0).mode(); }
  /// The full-dataset memory plan the fleet geometry was resolved from.
  const MemoryPlan& plan() const { return plan_; }
  size_t num_objects() const { return num_objects_; }
  size_t dims() const { return primary(0).dims(); }
  int64_t num_segments() const { return primary(0).num_segments(); }
  int64_t segment_length() const { return primary(0).segment_length(); }
  double alpha() const { return primary(0).alpha(); }
  double TransferBitsPerCandidate() const {
    return primary(0).TransferBitsPerCandidate();
  }
  double SerialDeviceNsPerQuery() const {
    return primary(0).SerialDeviceNsPerQuery();
  }
  /// Modeled pipelined occupancy of one fleet dispatch of `num_queries`
  /// queries: the shards run concurrently and the crossbar pass latency is
  /// row-count independent, so the fleet figure equals any one shard's.
  double ModeledBatchNs(size_t num_queries) const {
    return primary(0).ModeledBatchNs(num_queries);
  }
  const PimDevice& device1() const { return primary(0).device1(); }
  const PimDevice* device2() const { return primary(0).device2(); }

  // --- Fleet-aggregated stats -----------------------------------------
  /// Serial-equivalent modeled PIM time. Shards hold fewer rows but the
  /// crossbar pass latency is row-count independent, so every shard
  /// charges the same per-query time and the fleet figure — the shards
  /// run concurrently — is the max over shards, which equals the
  /// single-device value bit-for-bit (a failed-over shard only ever
  /// charges less).
  double PimComputeNs() const;
  /// Max over shards of the pipelined device-occupancy time.
  double PimPipelinedNs() const;
  /// Fault/recovery accounting merged over every shard's devices.
  FaultStats FaultStatsTotal() const;
  /// Offline time: shards program concurrently, so the max over shards.
  double OfflineNs() const;
  /// Offline bytes written across the whole fleet (sum over shards).
  uint64_t OfflineBytesWritten() const;
  void ResetOnlineStats();

  /// Snapshot of the fleet interconnect accounting. The ns figures are
  /// derived from the integer counters at snapshot time
  /// (PimTimingModel::TransferLatencyNs per message), so they are
  /// identical for every thread interleaving. All-zero when shards == 1.
  /// Interconnect/failover fields are the exact sums of the per-shard
  /// counters (reduce_* stays fleet-level: a tree reduction has no single
  /// owning shard).
  FleetRunStats FleetStats() const;

  /// Health snapshot of one fleet member: its interconnect counters, its
  /// devices' batch/query/time accounting and fault-recovery counters.
  /// Safe to call while dispatches are in flight (device stats are copied
  /// under the device's stats mutex). Summing any integer field over all
  /// shards reproduces the corresponding FleetStats() aggregate exactly.
  struct ShardHealth {
    uint64_t scatter_messages = 0;
    uint64_t scatter_bytes = 0;
    uint64_t gather_messages = 0;
    uint64_t gather_bytes = 0;
    uint64_t failovers = 0;
    uint64_t failed_over_queries = 0;
    /// Derived from this shard's message/byte counters exactly as
    /// FleetStats() derives the fleet figures (same linear formula, so the
    /// per-shard values sum to the aggregates bit-for-bit).
    double scatter_ns = 0.0;
    double gather_ns = 0.0;
    /// Device-side accounting summed over this shard's devices (all
    /// replicas — a failed attempt's pass charges its replica).
    uint64_t batch_ops = 0;
    uint64_t queries_processed = 0;
    double pim_ns = 0.0;        // serial-equivalent compute_ns.
    double pipelined_ns = 0.0;  // modeled device occupancy.
    FaultStats fault;
    /// Replica-failover ladder accounting of this shard.
    FailoverStats failover;
    int serving_replica = 0;
    bool degraded = false;
  };
  ShardHealth ShardHealthSnapshot(size_t j) const;

  /// Writes per-shard labeled families into `registry`
  /// (pimine_fleet_shard_*{shard="j"}): interconnect messages/bytes/ns,
  /// device batch/query/occupancy accounting and fault-recovery counters,
  /// one label combination per shard, plus the fleet-level reduce_* and
  /// shard-count families. End-of-run totals across shards equal the
  /// FleetStats() / FaultStatsTotal() aggregates exactly.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  /// Charges one tree reduction of per-shard partials with `payload_bytes`
  /// per merge message (k-means centroid sums): ceil(log2 M) critical-path
  /// messages. No-op when shards == 1.
  void ChargeTreeReduction(uint64_t payload_bytes) const;

  /// Execution policy for the per-shard DeviceBatch fan-out. Default is
  /// serial (inline on the caller): RunQueryBatch is typically invoked
  /// from inside a ParallelChunks worker, where a nested parallel fan-out
  /// on the shared pool could deadlock. Coordinators that call from the
  /// main thread (k-means BeginIteration) may opt in to a parallel
  /// fan-out; functional results and stats are identical either way.
  void set_fanout_policy(const ExecPolicy& policy) {
    fanout_policy_ = policy;
  }

 private:
  ShardedPimEngine() = default;

  PimEngine& primary(size_t j) const { return *engines_[j][0]; }

  /// Sizes replica_state_ to the engines_ geometry (all healthy).
  void InitReplicaState();

  /// The failover ladder of one shard's share of one dispatch: walk the
  /// replicas in deterministic order (primary first), skipping struck-out
  /// members, charging seeded backoff + operand re-scatter per retry, and
  /// escalating off-device only when every replica is exhausted.
  Status DeviceBatchWithFailover(size_t j, const QueryScratch& scratch,
                                 size_t num_queries,
                                 PimEngine::QueryHandleBatch* handle,
                                 const DispatchOptions& dispatch,
                                 bool emit_query_spans) const;

  /// Bytes of one operand re-scatter to a retry replica, computed from the
  /// fleet geometry (not from live scratch buffers) so PlanFailover and
  /// the executing ladder charge the identical figure.
  uint64_t RetryOperandBytes(size_t num_queries) const;

  EngineOptions options_;
  MemoryPlan plan_;
  size_t num_objects_ = 0;
  ShardMap map_;
  /// engines_[j][r]: replica r of shard j. Replica 0 is the deterministic
  /// primary and keeps the exact pre-replica build (seed formula
  /// included), so no-fault runs are bit-identical to replicas == 1.
  std::vector<std::vector<std::unique_ptr<PimEngine>>> engines_;
  ExecPolicy fanout_policy_;  // default-constructed: serial.

  // Availability-fault plane: an installed schedule is consulted (purely,
  // by dispatch instant) before every replica attempt. Never owned.
  const ChaosSchedule* chaos_ = nullptr;
  mutable std::atomic<uint64_t> chaos_now_ns_{0};

  /// Ladder health of one replica. `strikes` counts CONSECUTIVE failed
  /// attempts (any success resets it); at max_strikes the replica is
  /// struck out and skipped until ResetReplicaHealth().
  struct ReplicaState {
    std::atomic<uint32_t> strikes{0};
    std::atomic<bool> out{false};
  };
  mutable std::vector<std::vector<std::unique_ptr<ReplicaState>>>
      replica_state_;

  // Fleet interconnect accounting: integer counters only (mutated under
  // concurrent RunQueryBatch calls; order-independent), ns derived at
  // snapshot. Kept PER SHARD (heap-allocated: atomics are immovable) so
  // the telemetry plane can expose each member's health; FleetStats() sums
  // them, which reproduces the former fleet-level totals exactly.
  struct ShardCounters {
    std::atomic<uint64_t> scatter_messages{0};
    std::atomic<uint64_t> scatter_bytes{0};
    std::atomic<uint64_t> gather_messages{0};
    std::atomic<uint64_t> gather_bytes{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> failed_over_queries{0};
    // Failover-ladder accounting (FailoverStats fields; same
    // order-independent integer-counter discipline).
    std::atomic<uint64_t> fo_injected{0};
    std::atomic<uint64_t> fo_recovered{0};
    std::atomic<uint64_t> fo_shed{0};
    std::atomic<uint64_t> fo_attempts_failed{0};
    std::atomic<uint64_t> fo_chaos_denied{0};
    std::atomic<uint64_t> fo_device_faults{0};
    std::atomic<uint64_t> fo_strikes{0};
    std::atomic<uint64_t> fo_struck_out{0};
    std::atomic<uint64_t> fo_slack_fills{0};
    std::atomic<uint64_t> fo_retry_messages{0};
    std::atomic<uint64_t> fo_retry_bytes{0};
    std::atomic<uint64_t> fo_backoff_ns{0};
    // Last-dispatch serving state (health reporting, not accounting).
    std::atomic<uint32_t> serving_replica{0};
    std::atomic<bool> slack_mode{false};
  };
  mutable std::vector<std::unique_ptr<ShardCounters>> shard_counters_;
  // Tree reductions merge per-shard partials pairwise — no single owning
  // shard, so the reduce class stays fleet-level.
  mutable std::atomic<uint64_t> reduce_messages_{0};
  mutable std::atomic<uint64_t> reduce_bytes_{0};

  // Mutable-dataset accounting. append_seq_ drives the round-robin row
  // placement and survives compaction, so a long insert stream keeps
  // balancing the shards. The counters are cumulative (ResetOnlineStats
  // leaves them untouched) and atomic only so concurrent FleetStats /
  // metrics snapshots stay race-free; mutations themselves are externally
  // serialized.
  uint64_t append_seq_ = 0;
  std::atomic<uint64_t> mut_appended_rows_{0};
  std::atomic<uint64_t> mut_deleted_rows_{0};
  std::atomic<uint64_t> mut_compactions_{0};
  std::atomic<uint64_t> mut_compacted_rows_{0};
};

/// Merges per-shard top-k lists into the global top-k. Every input list
/// must be sorted the way TopK::TakeSorted emits — ascending by
/// (distance, id) — over pairwise-disjoint id sets, each holding its
/// shard's k best. Because a TopK fed candidates in ascending id order
/// retains exactly the k lexicographically-smallest (distance, id) pairs,
/// the k smallest of the union of per-shard k-bests equal the k smallest
/// of all candidates: the merge is bit-identical to the single-device
/// result, ties and all.
std::vector<Neighbor> MergeShardTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, size_t k);

}  // namespace pimine

#endif  // PIMINE_CORE_SHARDED_ENGINE_H_
