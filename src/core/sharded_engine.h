#ifndef PIMINE_CORE_SHARDED_ENGINE_H_
#define PIMINE_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/engine.h"
#include "data/matrix.h"
#include "pim/fleet.h"
#include "util/parallel.h"
#include "util/top_k.h"

namespace pimine {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// A fleet of PIM devices acting as one logical engine (DESIGN.md section
/// 9): the dataset is sharded across M per-shard PimEngines (ShardOptions
/// placement), each query batch is prepared once on the host, scattered to
/// every shard, matched in parallel, and the per-shard dot products are
/// gathered for the host's global combine. Only the device/transfer layer
/// is sharded — BoundFor routes one global object index to its shard's
/// results, so the host pipeline above (bounds, sort, refine) is untouched
/// and every functional result and grouping-invariant counter is
/// bit-identical to the single-device run for every M. What legitimately
/// varies with M is the new FleetRunStats scatter/gather/reduce accounting
/// (and the per-shard device batch_ops, like device_batch already does).
///
/// shards == 1 constructs exactly one PimEngine from the original options
/// and delegates wholesale: behaviour, traces and stats are those of a
/// plain PimEngine, trivially.
///
/// The geometry (bound family, segment count) is always resolved on the
/// FULL dataset, exactly as PimEngine::Build would, then forced on every
/// shard — a smaller shard must not pick a different Theorem 4 plan, or
/// results would depend on M.
class ShardedPimEngine {
 public:
  using QueryScratch = PimEngine::QueryScratch;

  /// One per-shard QueryHandleBatch per fleet member; BoundFor routes
  /// global object indices into them. size() == shards().
  struct QueryHandleBatch {
    size_t num_queries = 0;
    std::vector<PimEngine::QueryHandleBatch> shards;
  };

  static Result<std::unique_ptr<ShardedPimEngine>> Build(
      const FloatMatrix& data, Distance distance,
      const EngineOptions& options);

  /// One batched fleet operation: PrepareBatch once on the host (query-side
  /// scalars + quantized operands, charged exactly once), scatter the
  /// operands to every shard (one DeviceBatch per shard, fanned out under
  /// set_fanout_policy), gather the results. A shard failing with
  /// DeviceFault is escalated to a host-exact recompute of that shard when
  /// ShardOptions::failover is set. Bounds derived from the handle are
  /// bit-identical to the single-device engine's for every M.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries,
                                         QueryScratch* scratch) const;

  /// As above, allocating scratch internally.
  Result<QueryHandleBatch> RunQueryBatch(std::span<const float> queries,
                                         size_t num_queries) const;

  /// Reusing variant: fills a caller-owned handle (per-shard sub-handles
  /// and all their buffers are reused across calls), the zero-allocation
  /// steady-state path of the serving scheduler's dispatch loop. Results
  /// and stats are identical to the by-value overload.
  Status RunQueryBatch(std::span<const float> queries, size_t num_queries,
                       QueryScratch* scratch, QueryHandleBatch* out) const;

  /// The bound for `batch` query `query` against GLOBAL object `index`:
  /// routed to shard_of(index) and combined there. Bit-identical to the
  /// single-device BoundFor.
  double BoundFor(const QueryHandleBatch& batch, size_t query,
                  size_t index) const;

  // --- Fleet geometry -------------------------------------------------
  size_t shards() const { return engines_.size(); }
  ShardPlacement placement() const { return options_.shard.placement; }
  const ShardMap& shard_map() const { return map_; }
  /// The shard-j engine (tests / stats inspection).
  const PimEngine& shard_engine(size_t j) const { return *engines_[j]; }

  // --- Pass-through accessors (identical across shards) ---------------
  EngineMode mode() const { return engines_[0]->mode(); }
  /// The full-dataset memory plan the fleet geometry was resolved from.
  const MemoryPlan& plan() const { return plan_; }
  size_t num_objects() const { return num_objects_; }
  size_t dims() const { return engines_[0]->dims(); }
  int64_t num_segments() const { return engines_[0]->num_segments(); }
  int64_t segment_length() const { return engines_[0]->segment_length(); }
  double alpha() const { return engines_[0]->alpha(); }
  double TransferBitsPerCandidate() const {
    return engines_[0]->TransferBitsPerCandidate();
  }
  double SerialDeviceNsPerQuery() const {
    return engines_[0]->SerialDeviceNsPerQuery();
  }
  /// Modeled pipelined occupancy of one fleet dispatch of `num_queries`
  /// queries: the shards run concurrently and the crossbar pass latency is
  /// row-count independent, so the fleet figure equals any one shard's.
  double ModeledBatchNs(size_t num_queries) const {
    return engines_[0]->ModeledBatchNs(num_queries);
  }
  const PimDevice& device1() const { return engines_[0]->device1(); }
  const PimDevice* device2() const { return engines_[0]->device2(); }

  // --- Fleet-aggregated stats -----------------------------------------
  /// Serial-equivalent modeled PIM time. Shards hold fewer rows but the
  /// crossbar pass latency is row-count independent, so every shard
  /// charges the same per-query time and the fleet figure — the shards
  /// run concurrently — is the max over shards, which equals the
  /// single-device value bit-for-bit (a failed-over shard only ever
  /// charges less).
  double PimComputeNs() const;
  /// Max over shards of the pipelined device-occupancy time.
  double PimPipelinedNs() const;
  /// Fault/recovery accounting merged over every shard's devices.
  FaultStats FaultStatsTotal() const;
  /// Offline time: shards program concurrently, so the max over shards.
  double OfflineNs() const;
  /// Offline bytes written across the whole fleet (sum over shards).
  uint64_t OfflineBytesWritten() const;
  void ResetOnlineStats();

  /// Snapshot of the fleet interconnect accounting. The ns figures are
  /// derived from the integer counters at snapshot time
  /// (PimTimingModel::TransferLatencyNs per message), so they are
  /// identical for every thread interleaving. All-zero when shards == 1.
  /// Interconnect/failover fields are the exact sums of the per-shard
  /// counters (reduce_* stays fleet-level: a tree reduction has no single
  /// owning shard).
  FleetRunStats FleetStats() const;

  /// Health snapshot of one fleet member: its interconnect counters, its
  /// devices' batch/query/time accounting and fault-recovery counters.
  /// Safe to call while dispatches are in flight (device stats are copied
  /// under the device's stats mutex). Summing any integer field over all
  /// shards reproduces the corresponding FleetStats() aggregate exactly.
  struct ShardHealth {
    uint64_t scatter_messages = 0;
    uint64_t scatter_bytes = 0;
    uint64_t gather_messages = 0;
    uint64_t gather_bytes = 0;
    uint64_t failovers = 0;
    uint64_t failed_over_queries = 0;
    /// Derived from this shard's message/byte counters exactly as
    /// FleetStats() derives the fleet figures (same linear formula, so the
    /// per-shard values sum to the aggregates bit-for-bit).
    double scatter_ns = 0.0;
    double gather_ns = 0.0;
    /// Device-side accounting summed over this shard's devices.
    uint64_t batch_ops = 0;
    uint64_t queries_processed = 0;
    double pim_ns = 0.0;        // serial-equivalent compute_ns.
    double pipelined_ns = 0.0;  // modeled device occupancy.
    FaultStats fault;
  };
  ShardHealth ShardHealthSnapshot(size_t j) const;

  /// Writes per-shard labeled families into `registry`
  /// (pimine_fleet_shard_*{shard="j"}): interconnect messages/bytes/ns,
  /// device batch/query/occupancy accounting and fault-recovery counters,
  /// one label combination per shard, plus the fleet-level reduce_* and
  /// shard-count families. End-of-run totals across shards equal the
  /// FleetStats() / FaultStatsTotal() aggregates exactly.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  /// Charges one tree reduction of per-shard partials with `payload_bytes`
  /// per merge message (k-means centroid sums): ceil(log2 M) critical-path
  /// messages. No-op when shards == 1.
  void ChargeTreeReduction(uint64_t payload_bytes) const;

  /// Execution policy for the per-shard DeviceBatch fan-out. Default is
  /// serial (inline on the caller): RunQueryBatch is typically invoked
  /// from inside a ParallelChunks worker, where a nested parallel fan-out
  /// on the shared pool could deadlock. Coordinators that call from the
  /// main thread (k-means BeginIteration) may opt in to a parallel
  /// fan-out; functional results and stats are identical either way.
  void set_fanout_policy(const ExecPolicy& policy) {
    fanout_policy_ = policy;
  }

 private:
  ShardedPimEngine() = default;

  EngineOptions options_;
  MemoryPlan plan_;
  size_t num_objects_ = 0;
  ShardMap map_;
  std::vector<std::unique_ptr<PimEngine>> engines_;
  ExecPolicy fanout_policy_;  // default-constructed: serial.

  // Fleet interconnect accounting: integer counters only (mutated under
  // concurrent RunQueryBatch calls; order-independent), ns derived at
  // snapshot. Kept PER SHARD (heap-allocated: atomics are immovable) so
  // the telemetry plane can expose each member's health; FleetStats() sums
  // them, which reproduces the former fleet-level totals exactly.
  struct ShardCounters {
    std::atomic<uint64_t> scatter_messages{0};
    std::atomic<uint64_t> scatter_bytes{0};
    std::atomic<uint64_t> gather_messages{0};
    std::atomic<uint64_t> gather_bytes{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> failed_over_queries{0};
  };
  mutable std::vector<std::unique_ptr<ShardCounters>> shard_counters_;
  // Tree reductions merge per-shard partials pairwise — no single owning
  // shard, so the reduce class stays fleet-level.
  mutable std::atomic<uint64_t> reduce_messages_{0};
  mutable std::atomic<uint64_t> reduce_bytes_{0};
};

/// Merges per-shard top-k lists into the global top-k. Every input list
/// must be sorted the way TopK::TakeSorted emits — ascending by
/// (distance, id) — over pairwise-disjoint id sets, each holding its
/// shard's k best. Because a TopK fed candidates in ascending id order
/// retains exactly the k lexicographically-smallest (distance, id) pairs,
/// the k smallest of the union of per-shard k-bests equal the k smallest
/// of all candidates: the merge is bit-identical to the single-device
/// result, ties and all.
std::vector<Neighbor> MergeShardTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, size_t k);

}  // namespace pimine

#endif  // PIMINE_CORE_SHARDED_ENGINE_H_
