#ifndef PIMINE_CORE_SEGMENTS_H_
#define PIMINE_CORE_SEGMENTS_H_

#include <cstdint>
#include <span>

#include "common/logging.h"
#include "data/matrix.h"

namespace pimine {

/// Segment statistics used by the dimensionality-reducing bounds (Table 3):
/// a d-dimensional vector is split into d0 segments of length l = d/d0, and
/// each segment is summarized by its mean and population stddev.
///
/// When d is not divisible by d0 the last segment absorbs the remainder;
/// `SegmentLength` reports the nominal l used in the bound scaling, which
/// stays a valid lower bound because shorter nominal segments only weaken
/// the bound.
struct SegmentStats {
  /// num_vectors x d0 matrices of per-segment means and stddevs.
  FloatMatrix means;
  FloatMatrix stds;
  int64_t num_segments = 0;
  int64_t segment_length = 0;
};

/// Nominal segment length l for d dims and d0 segments.
inline int64_t SegmentLength(int64_t d, int64_t d0) {
  PIMINE_CHECK(d0 > 0 && d0 <= d);
  return d / d0;
}

/// Computes per-segment mean/stddev for a single vector into caller-provided
/// outputs of length `d0`.
void ComputeSegments(std::span<const float> vec, int64_t d0,
                     std::span<float> means_out, std::span<float> stds_out);

/// Computes segment statistics for every row of `data`.
SegmentStats ComputeSegmentStats(const FloatMatrix& data, int64_t d0);

}  // namespace pimine

#endif  // PIMINE_CORE_SEGMENTS_H_
