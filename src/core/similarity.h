#ifndef PIMINE_CORE_SIMILARITY_H_
#define PIMINE_CORE_SIMILARITY_H_

#include <span>
#include <string_view>

namespace pimine {

/// Similarity / distance measures from Table 2 of the paper.
enum class Distance {
  kEuclidean,  // squared Euclidean distance (the paper's ED).
  kCosine,     // cosine similarity (larger = more similar).
  kPearson,    // Pearson correlation coefficient (larger = more similar).
  kHamming,    // Hamming distance on binary codes.
};

std::string_view DistanceName(Distance distance);

/// True for measures where larger values mean "more similar" (CS, PCC) —
/// kNN on those is maximum-similarity search with *upper* bounds.
bool IsSimilarityMeasure(Distance distance);

/// Squared Euclidean distance: sum_i (p_i - q_i)^2. Counts memory traffic
/// and arithmetic into the thread-local TrafficCounters (the instrumentation
/// behind Figs. 5-7).
double SquaredEuclidean(std::span<const float> p, std::span<const float> q);

/// Squared Euclidean with early abandoning: returns a value > `threshold`
/// (not necessarily the exact distance) as soon as the partial sum exceeds
/// it. Exact when the result is <= threshold.
double SquaredEuclideanEarlyAbandon(std::span<const float> p,
                                    std::span<const float> q,
                                    double threshold);

/// Dot product sum_i p_i * q_i.
double DotProduct(std::span<const float> p, std::span<const float> q);

/// Cosine similarity: p.q / (|p||q|). Returns 0 when either norm is 0.
double CosineSimilarity(std::span<const float> p, std::span<const float> q);

/// Pearson correlation coefficient. Returns 0 when either vector is
/// constant.
double PearsonCorrelation(std::span<const float> p, std::span<const float> q);

}  // namespace pimine

#endif  // PIMINE_CORE_SIMILARITY_H_
