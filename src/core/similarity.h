#ifndef PIMINE_CORE_SIMILARITY_H_
#define PIMINE_CORE_SIMILARITY_H_

#include <span>
#include <string_view>

namespace pimine {

/// Similarity / distance measures from Table 2 of the paper.
enum class Distance {
  kEuclidean,  // squared Euclidean distance (the paper's ED).
  kCosine,     // cosine similarity (larger = more similar).
  kPearson,    // Pearson correlation coefficient (larger = more similar).
  kHamming,    // Hamming distance on binary codes.
};

std::string_view DistanceName(Distance distance);

/// True for measures where larger values mean "more similar" (CS, PCC) —
/// kNN on those is maximum-similarity search with *upper* bounds.
bool IsSimilarityMeasure(Distance distance);

/// Squared Euclidean distance: sum_i (p_i - q_i)^2. Counts memory traffic
/// and arithmetic into the thread-local TrafficCounters (the instrumentation
/// behind Figs. 5-7).
double SquaredEuclidean(std::span<const float> p, std::span<const float> q);

/// Squared Euclidean with early abandoning: returns a value > `threshold`
/// (not necessarily the exact distance) as soon as the partial sum exceeds
/// it. Exact when the result is <= threshold.
double SquaredEuclideanEarlyAbandon(std::span<const float> p,
                                    std::span<const float> q,
                                    double threshold);

/// Dot product sum_i p_i * q_i.
double DotProduct(std::span<const float> p, std::span<const float> q);

/// Cosine similarity: p.q / (|p||q|). Returns 0 when either norm is 0.
double CosineSimilarity(std::span<const float> p, std::span<const float> q);

/// Pearson correlation coefficient. Returns 0 when either vector is
/// constant.
double PearsonCorrelation(std::span<const float> p, std::span<const float> q);

// --- blocked batch kernels ------------------------------------------------
//
// Each kernel evaluates one query against `num_rows` contiguous candidate
// rows (`rows` points at row 0; rows are q.size() floats apart, i.e. a
// FloatMatrix row range) and writes one result per row into `out`. The
// inner loops run over a handful of independent accumulators so the
// auto-vectorizer can emit SIMD (build with PIMINE_ENABLE_NATIVE=ON for the
// widest ISA the host supports). Memory traffic and arithmetic are charged
// once per block with totals identical to num_rows scalar kernel calls, so
// cost-model accounting is unaffected by blocking. Results can differ from
// the scalar kernels in the last ulp (different summation order); a given
// kernel is deterministic across runs and thread counts.

/// out[i] = squared Euclidean distance between row i and q.
void SquaredEuclideanBatch(const float* rows, size_t num_rows,
                           std::span<const float> q, double* out);

/// out[i] = dot product of row i and q.
void DotProductBatch(const float* rows, size_t num_rows,
                     std::span<const float> q, double* out);

/// out[i] = cosine similarity of row i and q (0 when either norm is 0).
void CosineSimilarityBatch(const float* rows, size_t num_rows,
                           std::span<const float> q, double* out);

/// out[i] = Pearson correlation of row i and q (0 for constant vectors).
void PearsonBatch(const float* rows, size_t num_rows,
                  std::span<const float> q, double* out);

}  // namespace pimine

#endif  // PIMINE_CORE_SIMILARITY_H_
