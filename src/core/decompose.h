#ifndef PIMINE_CORE_DECOMPOSE_H_
#define PIMINE_CORE_DECOMPOSE_H_

#include <cstdint>
#include <span>

namespace pimine {

/// Eq. 3 / Table 4: PIM-aware decompositions F(p,q) = G(Phi(p), Phi(q), p.q)
/// of the exact similarity functions. Phi is computed offline over the
/// dataset (and once per query); the dot product is the part PIM executes;
/// G combines them in O(1) on the host.
///
/// These are the *exact* decompositions (valid for real-valued vectors).
/// The quantized PIM-aware *bounds* that hardware can actually evaluate live
/// in core/pim_bounds.h; tests verify both layers against the direct
/// formulas in core/similarity.h.

/// ED(p,q) = Phi(p) + Phi(q) - 2 p.q with Phi(x) = sum x_i^2 (Eq. 4).
struct EdDecomposition {
  static double Phi(std::span<const float> x);
  static double Combine(double phi_p, double phi_q, double dot) {
    return phi_p + phi_q - 2.0 * dot;
  }
};

/// CS(p,q) = p.q / (Phi(p) * Phi(q)) with Phi(x) = sqrt(sum x_i^2).
struct CsDecomposition {
  static double Phi(std::span<const float> x);
  static double Combine(double phi_p, double phi_q, double dot) {
    const double denom = phi_p * phi_q;
    return denom > 0.0 ? dot / denom : 0.0;
  }
};

/// PCC(p,q) = (d * p.q - PhiB(p)*PhiB(q)) / (PhiA(p)*PhiA(q)) with
/// PhiA(x) = sqrt(d * sum x^2 - (sum x)^2) and PhiB(x) = sum x.
struct PccDecomposition {
  struct Phi {
    double a = 0.0;
    double b = 0.0;
  };
  static Phi ComputePhi(std::span<const float> x);
  static double Combine(const Phi& p, const Phi& q, double dot, int64_t dims) {
    const double denom = p.a * q.a;
    if (denom <= 0.0) return 0.0;
    return (static_cast<double>(dims) * dot - p.b * q.b) / denom;
  }
};

/// HD(p,q) = d - p.q - p~.q~ on 0/1 vectors, where p~ is the bit complement
/// (Table 4). Both dot products are PIM-computable.
struct HdDecomposition {
  static int64_t Combine(int64_t code_dot, int64_t complement_dot,
                         int64_t dims) {
    return dims - code_dot - complement_dot;
  }
};

/// LB_FNN decomposed (Table 4 last row):
///   LB = Phi(p) + Phi(q) - 2l*mu(p).mu(q) - 2l*sigma(p).sigma(q)
/// with Phi(x) = l * sum(mu_i^2 + sigma_i^2) over the segment stats.
struct FnnDecomposition {
  static double Phi(std::span<const float> seg_means,
                    std::span<const float> seg_stds, int64_t segment_length);
  static double Combine(double phi_p, double phi_q, double mean_dot,
                        double std_dot, int64_t segment_length) {
    return phi_p + phi_q -
           2.0 * static_cast<double>(segment_length) * (mean_dot + std_dot);
  }
};

}  // namespace pimine

#endif  // PIMINE_CORE_DECOMPOSE_H_
