#include "core/plan.h"

#include <sstream>

#include "common/logging.h"

namespace pimine {

std::string ExecutionPlan::ToString(
    std::span<const BoundCandidate> candidates) const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < selected.size(); ++i) {
    if (i > 0) os << " -> ";
    os << candidates[selected[i]].name;
  }
  os << (selected.empty() ? "exact-only" : " -> exact");
  os << "] cost=" << cost_bits_per_object << " bits/object";
  return os.str();
}

double PlanCostBits(std::span<const BoundCandidate> candidates,
                    std::span<const size_t> selected,
                    double exact_cost_bits) {
  double cost = 0.0;
  double survive = 1.0;
  for (size_t idx : selected) {
    PIMINE_CHECK(idx < candidates.size());
    cost += candidates[idx].transfer_bits * survive;
    survive *= 1.0 - candidates[idx].pruning_ratio;
  }
  cost += exact_cost_bits * survive;
  return cost;
}

ExecutionPlan ChooseExecutionPlan(std::span<const BoundCandidate> candidates,
                                  double exact_cost_bits) {
  const size_t l = candidates.size();
  PIMINE_CHECK(l <= 20) << "candidate set too large to enumerate";
  ExecutionPlan best;
  best.cost_bits_per_object = exact_cost_bits;  // empty plan baseline.

  const size_t num_subsets = 1ULL << l;
  std::vector<size_t> selection;
  for (size_t mask = 1; mask < num_subsets; ++mask) {
    selection.clear();
    for (size_t i = 0; i < l; ++i) {
      if (mask & (1ULL << i)) selection.push_back(i);
    }
    const double cost = PlanCostBits(candidates, selection, exact_cost_bits);
    if (cost < best.cost_bits_per_object) {
      best.cost_bits_per_object = cost;
      best.selected = selection;
    }
  }
  return best;
}

double MeasurePruningRatio(std::span<const double> bound_values,
                           double threshold, bool is_upper_bound) {
  if (bound_values.empty()) return 0.0;
  size_t pruned = 0;
  for (double v : bound_values) {
    if (is_upper_bound ? (v < threshold) : (v > threshold)) ++pruned;
  }
  return static_cast<double>(pruned) /
         static_cast<double>(bound_values.size());
}

}  // namespace pimine
