#include "core/mutable_dataset.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "common/logging.h"

namespace pimine {

MutableDataset::MutableDataset(FloatMatrix initial)
    : corpus_(std::move(initial)) {
  tombstone_.assign(corpus_.rows(), 0);
}

std::vector<uint32_t> MutableDataset::LiveRows() const {
  std::vector<uint32_t> live;
  live.reserve(live_rows());
  for (size_t i = 0; i < corpus_.rows(); ++i) {
    if (tombstone_[i] == 0) live.push_back(static_cast<uint32_t>(i));
  }
  return live;
}

FloatMatrix MutableDataset::LiveCorpus() const {
  FloatMatrix live(live_rows(), corpus_.cols());
  size_t w = 0;
  for (size_t i = 0; i < corpus_.rows(); ++i) {
    if (tombstone_[i] != 0) continue;
    const auto src = corpus_.row(i);
    auto dst = live.mutable_row(w++);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return live;
}

void MutableDataset::Attach(MutationListener* listener) {
  PIMINE_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

Status MutableDataset::Insert(const FloatMatrix& rows) {
  if (rows.rows() == 0) {
    return Status::InvalidArgument("Insert requires at least one row");
  }
  if (corpus_.rows() > 0 && rows.cols() != corpus_.cols()) {
    return Status::InvalidArgument("inserted row dimensionality mismatch");
  }
  for (size_t i = 0; i < rows.rows(); ++i) {
    for (float v : rows.row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument(
            "inserted rows must be normalized into [0, 1]");
      }
    }
  }
  corpus_.AppendRows(rows);
  tombstone_.resize(corpus_.rows(), 0);
  for (MutationListener* l : listeners_) {
    PIMINE_RETURN_IF_ERROR(l->OnInsert(rows));
  }
  return Status::OK();
}

Status MutableDataset::Delete(size_t row) {
  if (row >= corpus_.rows()) {
    return Status::InvalidArgument("Delete row out of range");
  }
  if (tombstone_[row] != 0) {
    return Status::InvalidArgument("row already deleted");
  }
  if (live_rows() <= 1) {
    return Status::FailedPrecondition("cannot delete the last live row");
  }
  tombstone_[row] = 1;
  ++tombstone_count_;
  const uint32_t deleted[] = {static_cast<uint32_t>(row)};
  for (MutationListener* l : listeners_) {
    PIMINE_RETURN_IF_ERROR(l->OnDelete(deleted));
  }
  return Status::OK();
}

Status MutableDataset::Compact() {
  if (live_rows() == 0) {
    return Status::FailedPrecondition("cannot compact an empty corpus");
  }
  std::vector<uint32_t> live = LiveRows();
  // Corpus first, listeners second: a listener re-reading the corpus
  // (e.g. FNN's plan re-measure) must see the compacted state.
  corpus_.KeepRows(live);
  tombstone_.assign(corpus_.rows(), 0);
  tombstone_count_ = 0;
  for (MutationListener* l : listeners_) {
    PIMINE_RETURN_IF_ERROR(l->OnCompact(live));
  }
  return Status::OK();
}

namespace {

Result<uint32_t> ParseU32(std::string_view text) {
  uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("malformed number '" + std::string(text) +
                                   "' in mutation trace");
  }
  return value;
}

}  // namespace

Result<std::vector<MutationOp>> ParseMutationTrace(std::string_view trace) {
  std::vector<MutationOp> ops;
  size_t pos = 0;
  while (pos <= trace.size()) {
    size_t comma = trace.find(',', pos);
    if (comma == std::string_view::npos) comma = trace.size();
    const std::string_view tok = trace.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) {
      if (trace.empty()) break;
      return Status::InvalidArgument("empty op in mutation trace");
    }
    MutationOp op;
    if (tok == "c") {
      op.kind = MutationOp::Kind::kCompact;
    } else if (tok.size() >= 3 && tok[1] == ':' &&
               (tok[0] == 'i' || tok[0] == 'd')) {
      const std::string_view arg = tok.substr(2);
      if (tok[0] == 'i') {
        op.kind = MutationOp::Kind::kInsert;
        PIMINE_ASSIGN_OR_RETURN(op.count, ParseU32(arg));
        if (op.count == 0) {
          return Status::InvalidArgument("i:0 in mutation trace");
        }
      } else {
        op.kind = MutationOp::Kind::kDelete;
        const size_t dash = arg.find('-');
        if (dash == std::string_view::npos) {
          PIMINE_ASSIGN_OR_RETURN(op.first, ParseU32(arg));
          op.last = op.first;
        } else {
          PIMINE_ASSIGN_OR_RETURN(op.first, ParseU32(arg.substr(0, dash)));
          PIMINE_ASSIGN_OR_RETURN(op.last, ParseU32(arg.substr(dash + 1)));
          if (op.last < op.first) {
            return Status::InvalidArgument(
                "reversed delete range in mutation trace");
          }
        }
      }
    } else {
      return Status::InvalidArgument("unknown op '" + std::string(tok) +
                                     "' in mutation trace (want i:N, d:A, "
                                     "d:A-B or c)");
    }
    ops.push_back(op);
    if (comma == trace.size()) break;
  }
  return ops;
}

Status ApplyMutationTrace(MutableDataset* dataset,
                          std::span<const MutationOp> ops,
                          const FloatMatrix& insert_stream,
                          size_t* stream_pos) {
  PIMINE_CHECK(dataset != nullptr && stream_pos != nullptr);
  for (const MutationOp& op : ops) {
    switch (op.kind) {
      case MutationOp::Kind::kInsert: {
        if (*stream_pos + op.count > insert_stream.rows()) {
          return Status::InvalidArgument(
              "mutation trace exhausts the insert stream");
        }
        FloatMatrix rows(op.count, insert_stream.cols());
        for (uint32_t i = 0; i < op.count; ++i) {
          const auto src = insert_stream.row(*stream_pos + i);
          std::copy(src.begin(), src.end(), rows.mutable_row(i).begin());
        }
        *stream_pos += op.count;
        PIMINE_RETURN_IF_ERROR(dataset->Insert(rows));
        break;
      }
      case MutationOp::Kind::kDelete:
        for (uint32_t r = op.first; r <= op.last; ++r) {
          PIMINE_RETURN_IF_ERROR(dataset->Delete(r));
        }
        break;
      case MutationOp::Kind::kCompact:
        PIMINE_RETURN_IF_ERROR(dataset->Compact());
        break;
    }
  }
  return Status::OK();
}

}  // namespace pimine
