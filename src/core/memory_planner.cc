#include "core/memory_planner.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "core/segments.h"
#include "pim/crossbar_math.h"

namespace pimine {

std::string MemoryPlan::ToString() const {
  std::ostringstream os;
  os << "s=" << s << " copies=" << copies << " ndata=" << data_crossbars
     << " ngather=" << gather_crossbars
     << (compressed ? " (compressed)" : " (full dimensionality)");
  return os.str();
}

Result<MemoryPlan> PlanPimLayout(int64_t n, int64_t original_dim,
                                 int operand_bits, int copies,
                                 const PimConfig& config) {
  if (n <= 0 || original_dim <= 0 || copies <= 0) {
    return Status::InvalidArgument("n, dim and copies must be positive");
  }
  // `copies` equally sized matrices are equivalent to one matrix of
  // copies*n vectors for capacity purposes.
  PIMINE_ASSIGN_OR_RETURN(
      const int64_t s,
      MaxCompressedDim(copies * n, operand_bits, original_dim, config));
  MemoryPlan plan;
  plan.s = s;
  plan.copies = copies;
  plan.compressed = s < original_dim;
  plan.data_crossbars = NumDataCrossbars(copies * n, operand_bits, s,
                                         config.crossbar_dim,
                                         config.cell_bits);
  plan.gather_crossbars = NumGatherCrossbars(copies * n, operand_bits, s,
                                             config.crossbar_dim,
                                             config.cell_bits);
  return plan;
}

FloatMatrix CompressBySegmentMeans(const FloatMatrix& data, int64_t s) {
  PIMINE_CHECK(s > 0 && static_cast<size_t>(s) <= data.cols());
  SegmentStats stats = ComputeSegmentStats(data, s);
  return std::move(stats.means);
}

PimConfig ScalePimArrayForDataset(int64_t paper_n, int64_t scaled_n,
                                  const PimConfig& base) {
  PIMINE_CHECK(paper_n > 0 && scaled_n > 0);
  PimConfig scaled = base;
  const double ratio =
      static_cast<double>(scaled_n) / static_cast<double>(paper_n);
  scaled.num_crossbars = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(base.num_crossbars) *
                              ratio));
  return scaled;
}

}  // namespace pimine
