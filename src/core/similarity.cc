#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/traffic.h"

namespace pimine {

std::string_view DistanceName(Distance distance) {
  switch (distance) {
    case Distance::kEuclidean:
      return "ED";
    case Distance::kCosine:
      return "CS";
    case Distance::kPearson:
      return "PCC";
    case Distance::kHamming:
      return "HD";
  }
  return "?";
}

bool IsSimilarityMeasure(Distance distance) {
  return distance == Distance::kCosine || distance == Distance::kPearson;
}

double SquaredEuclidean(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(p[i]) - q[i];
    acc += diff * diff;
  }
  // Conventional architecture: both vectors stream from memory (the query
  // stays cached across candidates; we charge the candidate payload).
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(3 * d);
  return acc;
}

double SquaredEuclideanEarlyAbandon(std::span<const float> p,
                                    std::span<const float> q,
                                    double threshold) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  size_t i = 0;
  constexpr size_t kCheckStride = 64;
  while (i < d) {
    const size_t stop = std::min(d, i + kCheckStride);
    for (; i < stop; ++i) {
      const double diff = static_cast<double>(p[i]) - q[i];
      acc += diff * diff;
    }
    if (acc > threshold) break;
  }
  traffic::CountRead(i * sizeof(float));
  traffic::CountArithmetic(3 * i + i / kCheckStride);
  traffic::CountBranches(i / kCheckStride + 1);
  return acc;
}

double DotProduct(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    acc += static_cast<double>(p[i]) * q[i];
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(2 * d);
  return acc;
}

double CosineSimilarity(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double dot = 0.0;
  double norm_p = 0.0;
  double norm_q = 0.0;
  for (size_t i = 0; i < d; ++i) {
    dot += static_cast<double>(p[i]) * q[i];
    norm_p += static_cast<double>(p[i]) * p[i];
    norm_q += static_cast<double>(q[i]) * q[i];
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(6 * d);
  traffic::CountLongOps(2);  // sqrt + division.
  const double denom = std::sqrt(norm_p) * std::sqrt(norm_q);
  return denom > 0.0 ? dot / denom : 0.0;
}

double PearsonCorrelation(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  if (d == 0) return 0.0;
  double sum_p = 0.0, sum_q = 0.0, sum_pq = 0.0, sum_pp = 0.0, sum_qq = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double a = p[i];
    const double b = q[i];
    sum_p += a;
    sum_q += b;
    sum_pq += a * b;
    sum_pp += a * a;
    sum_qq += b * b;
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(8 * d);
  traffic::CountLongOps(3);  // two sqrts + division.
  const double n = static_cast<double>(d);
  const double cov = n * sum_pq - sum_p * sum_q;
  const double var_p = n * sum_pp - sum_p * sum_p;
  const double var_q = n * sum_qq - sum_q * sum_q;
  const double denom = std::sqrt(var_p) * std::sqrt(var_q);
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace pimine
