#include "core/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/traffic.h"

namespace pimine {

std::string_view DistanceName(Distance distance) {
  switch (distance) {
    case Distance::kEuclidean:
      return "ED";
    case Distance::kCosine:
      return "CS";
    case Distance::kPearson:
      return "PCC";
    case Distance::kHamming:
      return "HD";
  }
  return "?";
}

bool IsSimilarityMeasure(Distance distance) {
  return distance == Distance::kCosine || distance == Distance::kPearson;
}

double SquaredEuclidean(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(p[i]) - q[i];
    acc += diff * diff;
  }
  // Conventional architecture: both vectors stream from memory (the query
  // stays cached across candidates; we charge the candidate payload).
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(3 * d);
  return acc;
}

double SquaredEuclideanEarlyAbandon(std::span<const float> p,
                                    std::span<const float> q,
                                    double threshold) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  size_t i = 0;
  constexpr size_t kCheckStride = 64;
  while (i < d) {
    const size_t stop = std::min(d, i + kCheckStride);
    for (; i < stop; ++i) {
      const double diff = static_cast<double>(p[i]) - q[i];
      acc += diff * diff;
    }
    if (acc > threshold) break;
  }
  traffic::CountRead(i * sizeof(float));
  traffic::CountArithmetic(3 * i + i / kCheckStride);
  traffic::CountBranches(i / kCheckStride + 1);
  return acc;
}

double DotProduct(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double acc = 0.0;
  for (size_t i = 0; i < d; ++i) {
    acc += static_cast<double>(p[i]) * q[i];
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(2 * d);
  return acc;
}

double CosineSimilarity(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  double dot = 0.0;
  double norm_p = 0.0;
  double norm_q = 0.0;
  for (size_t i = 0; i < d; ++i) {
    dot += static_cast<double>(p[i]) * q[i];
    norm_p += static_cast<double>(p[i]) * p[i];
    norm_q += static_cast<double>(q[i]) * q[i];
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(6 * d);
  traffic::CountLongOps(2);  // sqrt + division.
  const double denom = std::sqrt(norm_p) * std::sqrt(norm_q);
  return denom > 0.0 ? dot / denom : 0.0;
}

double PearsonCorrelation(std::span<const float> p, std::span<const float> q) {
  PIMINE_DCHECK(p.size() == q.size());
  const size_t d = p.size();
  if (d == 0) return 0.0;
  double sum_p = 0.0, sum_q = 0.0, sum_pq = 0.0, sum_pp = 0.0, sum_qq = 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double a = p[i];
    const double b = q[i];
    sum_p += a;
    sum_q += b;
    sum_pq += a * b;
    sum_pp += a * a;
    sum_qq += b * b;
  }
  traffic::CountRead(d * sizeof(float));
  traffic::CountArithmetic(8 * d);
  traffic::CountLongOps(3);  // two sqrts + division.
  const double n = static_cast<double>(d);
  const double cov = n * sum_pq - sum_p * sum_q;
  const double var_p = n * sum_pp - sum_p * sum_p;
  const double var_q = n * sum_qq - sum_q * sum_q;
  const double denom = std::sqrt(var_p) * std::sqrt(var_q);
  return denom > 0.0 ? cov / denom : 0.0;
}

namespace {

// Four-way unrolled accumulation over one candidate row. The independent
// accumulators break the serial dependence of a single running sum, which
// is what lets the auto-vectorizer keep several SIMD lanes busy.
template <typename StepFn>
inline void UnrolledRowLoop(size_t d, const StepFn& step) {
  size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    step(j, 0);
    step(j + 1, 1);
    step(j + 2, 2);
    step(j + 3, 3);
  }
  for (; j < d; ++j) step(j, 0);
}

}  // namespace

void SquaredEuclideanBatch(const float* rows, size_t num_rows,
                           std::span<const float> q, double* out) {
  const size_t d = q.size();
  const float* qp = q.data();
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * d;
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    UnrolledRowLoop(d, [&](size_t j, size_t lane) {
      const double diff = static_cast<double>(row[j]) - qp[j];
      acc[lane] += diff * diff;
    });
    out[r] = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  }
  traffic::CountRead(num_rows * d * sizeof(float));
  traffic::CountArithmetic(3 * num_rows * d);
}

void DotProductBatch(const float* rows, size_t num_rows,
                     std::span<const float> q, double* out) {
  const size_t d = q.size();
  const float* qp = q.data();
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * d;
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    UnrolledRowLoop(d, [&](size_t j, size_t lane) {
      acc[lane] += static_cast<double>(row[j]) * qp[j];
    });
    out[r] = (acc[0] + acc[1]) + (acc[2] + acc[3]);
  }
  traffic::CountRead(num_rows * d * sizeof(float));
  traffic::CountArithmetic(2 * num_rows * d);
}

void CosineSimilarityBatch(const float* rows, size_t num_rows,
                           std::span<const float> q, double* out) {
  const size_t d = q.size();
  const float* qp = q.data();
  // |q| is shared by every row of the block; fold its cost into the block's
  // long-op budget once (the scalar kernel recomputes it per call, but its
  // traffic charge is per-candidate either way).
  double norm_q[4] = {0.0, 0.0, 0.0, 0.0};
  UnrolledRowLoop(d, [&](size_t j, size_t lane) {
    norm_q[lane] += static_cast<double>(qp[j]) * qp[j];
  });
  const double q_norm =
      std::sqrt((norm_q[0] + norm_q[1]) + (norm_q[2] + norm_q[3]));
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * d;
    double dot[4] = {0.0, 0.0, 0.0, 0.0};
    double norm_p[4] = {0.0, 0.0, 0.0, 0.0};
    UnrolledRowLoop(d, [&](size_t j, size_t lane) {
      const double a = row[j];
      dot[lane] += a * qp[j];
      norm_p[lane] += a * a;
    });
    const double denom =
        std::sqrt((norm_p[0] + norm_p[1]) + (norm_p[2] + norm_p[3])) * q_norm;
    out[r] = denom > 0.0
                 ? ((dot[0] + dot[1]) + (dot[2] + dot[3])) / denom
                 : 0.0;
  }
  traffic::CountRead(num_rows * d * sizeof(float));
  traffic::CountArithmetic(6 * num_rows * d);
  traffic::CountLongOps(2 * num_rows);  // sqrt + division per row.
}

void PearsonBatch(const float* rows, size_t num_rows,
                  std::span<const float> q, double* out) {
  const size_t d = q.size();
  if (d == 0) {
    std::fill(out, out + num_rows, 0.0);
    return;
  }
  const float* qp = q.data();
  double sum_q = 0.0;
  double sum_qq[4] = {0.0, 0.0, 0.0, 0.0};
  UnrolledRowLoop(d, [&](size_t j, size_t lane) {
    sum_q += qp[j];
    sum_qq[lane] += static_cast<double>(qp[j]) * qp[j];
  });
  const double n = static_cast<double>(d);
  const double var_q =
      n * ((sum_qq[0] + sum_qq[1]) + (sum_qq[2] + sum_qq[3])) - sum_q * sum_q;
  for (size_t r = 0; r < num_rows; ++r) {
    const float* row = rows + r * d;
    double sum_p = 0.0;
    double sum_pq[4] = {0.0, 0.0, 0.0, 0.0};
    double sum_pp[4] = {0.0, 0.0, 0.0, 0.0};
    UnrolledRowLoop(d, [&](size_t j, size_t lane) {
      const double a = row[j];
      sum_p += a;
      sum_pq[lane] += a * qp[j];
      sum_pp[lane] += a * a;
    });
    const double cov =
        n * ((sum_pq[0] + sum_pq[1]) + (sum_pq[2] + sum_pq[3])) -
        sum_p * sum_q;
    const double var_p =
        n * ((sum_pp[0] + sum_pp[1]) + (sum_pp[2] + sum_pp[3])) -
        sum_p * sum_p;
    const double denom = std::sqrt(var_p) * std::sqrt(var_q);
    out[r] = denom > 0.0 ? cov / denom : 0.0;
  }
  traffic::CountRead(num_rows * d * sizeof(float));
  traffic::CountArithmetic(8 * num_rows * d);
  traffic::CountLongOps(3 * num_rows);  // two sqrts + division per row.
}

}  // namespace pimine
