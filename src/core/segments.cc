#include "core/segments.h"

#include <cmath>

namespace pimine {

void ComputeSegments(std::span<const float> vec, int64_t d0,
                     std::span<float> means_out, std::span<float> stds_out) {
  const int64_t d = static_cast<int64_t>(vec.size());
  PIMINE_CHECK(d0 > 0 && d0 <= d);
  PIMINE_CHECK(means_out.size() == static_cast<size_t>(d0) &&
               stds_out.size() == static_cast<size_t>(d0));
  const int64_t l = d / d0;
  for (int64_t s = 0; s < d0; ++s) {
    const int64_t begin = s * l;
    const int64_t end = (s == d0 - 1) ? d : begin + l;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      sum += vec[i];
      sum_sq += static_cast<double>(vec[i]) * vec[i];
    }
    const double n = static_cast<double>(end - begin);
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    means_out[s] = static_cast<float>(mean);
    stds_out[s] = static_cast<float>(var > 0.0 ? std::sqrt(var) : 0.0);
  }
}

SegmentStats ComputeSegmentStats(const FloatMatrix& data, int64_t d0) {
  SegmentStats out;
  out.num_segments = d0;
  out.segment_length = SegmentLength(static_cast<int64_t>(data.cols()), d0);
  out.means = FloatMatrix(data.rows(), static_cast<size_t>(d0));
  out.stds = FloatMatrix(data.rows(), static_cast<size_t>(d0));
  for (size_t i = 0; i < data.rows(); ++i) {
    ComputeSegments(data.row(i), d0, out.means.mutable_row(i),
                    out.stds.mutable_row(i));
  }
  return out;
}

}  // namespace pimine
