#include "core/partitioned_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "core/pim_bounds.h"
#include "pim/crossbar_math.h"

namespace pimine {

PartitionedPimEngine::PartitionedPimEngine(const FloatMatrix& data,
                                           const EngineOptions& options,
                                           int64_t partition_rows)
    : data_(&data),
      options_(options),
      quantizer_(options.alpha),
      partition_rows_(partition_rows),
      device_(std::make_unique<PimDevice>(options.pim_config)) {}

Result<std::unique_ptr<PartitionedPimEngine>> PartitionedPimEngine::Build(
    const FloatMatrix& data, const EngineOptions& options) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  for (size_t i = 0; i < data.rows(); ++i) {
    for (float v : data.row(i)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument("data must be normalized into [0, 1]");
      }
    }
  }
  const int64_t d = static_cast<int64_t>(data.cols());
  // Largest partition (row count) that fits at full dimensionality.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(data.rows()) + 1;  // first infeasible.
  if (!FitsInPimArray(1, options.operand_bits, d, options.pim_config)) {
    return Status::CapacityExceeded(
        "a single full-dimensionality vector does not fit the PIM array");
  }
  lo = 1;
  while (lo + 1 < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (FitsInPimArray(mid, options.operand_bits, d, options.pim_config)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  auto engine = std::unique_ptr<PartitionedPimEngine>(
      new PartitionedPimEngine(data, options, lo));
  for (size_t start = 0; start < data.rows();
       start += static_cast<size_t>(lo)) {
    engine->partition_starts_.push_back(start);
  }
  engine->phi_ = engine->quantizer_.PhiEdAll(data);
  return engine;
}

Status PartitionedPimEngine::ComputeBoundsBatch(
    const FloatMatrix& queries, std::vector<std::vector<double>>* bounds) {
  PIMINE_CHECK(bounds != nullptr);
  if (queries.cols() != data_->cols()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  const size_t n = data_->rows();
  const size_t nq = queries.rows();
  const int64_t d = static_cast<int64_t>(data_->cols());

  bounds->assign(nq, std::vector<double>(n, 0.0));

  // Quantize every query once per batch.
  IntMatrix quantized_queries(nq, data_->cols());
  std::vector<double> phi_q(nq);
  for (size_t q = 0; q < nq; ++q) {
    for (float v : queries.row(q)) {
      if (!(v >= 0.0f && v <= 1.0f)) {
        return Status::InvalidArgument(
            "queries must be normalized into [0, 1]");
      }
    }
    quantizer_.QuantizeRow(queries.row(q), quantized_queries.mutable_row(q));
    phi_q[q] = quantizer_.PhiEd(queries.row(q));
  }

  std::vector<uint64_t> dots;
  for (size_t start : partition_starts_) {
    const size_t rows =
        std::min<size_t>(static_cast<size_t>(partition_rows_), n - start);
    // Re-program the crossbars with this partition (endurance-counted).
    IntMatrix partition(rows, data_->cols());
    for (size_t r = 0; r < rows; ++r) {
      quantizer_.QuantizeRow(data_->row(start + r),
                             partition.mutable_row(r));
    }
    PIMINE_RETURN_IF_ERROR(
        device_->ReprogramDataset(partition, options_.operand_bits));

    for (size_t q = 0; q < nq; ++q) {
      PIMINE_RETURN_IF_ERROR(
          device_->DotProductAll(quantized_queries.row(q), &dots));
      std::vector<double>& out = (*bounds)[q];
      for (size_t r = 0; r < rows; ++r) {
        out[start + r] = LbPimEdCombine(phi_[start + r], phi_q[q], dots[r],
                                        d, quantizer_.alpha());
      }
    }
  }
  return Status::OK();
}

}  // namespace pimine
