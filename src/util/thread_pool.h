#ifndef PIMINE_UTIL_THREAD_POOL_H_
#define PIMINE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pimine {

/// Minimal fixed-size worker pool. The paper's measurements are
/// single-threaded (§IV-A); the pool exists so the benchmark harness can
/// parallelize *across* independent experiment cells without perturbing the
/// single-threaded timing inside each cell.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until done.
void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace pimine

#endif  // PIMINE_UTIL_THREAD_POOL_H_
