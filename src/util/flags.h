#ifndef PIMINE_UTIL_FLAGS_H_
#define PIMINE_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pimine {

/// Minimal command-line flag parser for the CLI tool and ad-hoc drivers.
/// Accepts `--key=value` and boolean `--key` tokens; everything else is a
/// positional argument. No registration step — callers query by name with
/// a default, and `CheckKnown` rejects typos against an allowlist.
class FlagParser {
 public:
  /// Parses argv (skipping argv[0]). Fails on malformed tokens like "--".
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return flags_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  /// Fails (falls back to the default and records an error via status())
  /// when the value does not parse as the requested type.
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  /// `--key` alone, or --key=true/1/yes (false/0/no).
  bool GetBool(const std::string& key, bool default_value) const;

  /// Returns InvalidArgument naming the first flag not in `known`.
  Status CheckKnown(const std::vector<std::string>& known) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pimine

#endif  // PIMINE_UTIL_FLAGS_H_
