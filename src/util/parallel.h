#ifndef PIMINE_UTIL_PARALLEL_H_
#define PIMINE_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "util/thread_pool.h"

namespace pimine {

/// Host-side execution policy for batch-query APIs (kNN Search, k-means
/// Run, PimEngine::ComputeBounds). The policy only changes *how fast* the
/// host side runs, never *what* it computes: any policy produces results,
/// traffic counters and modeled PIM/host timings identical to the
/// single-threaded default (see DESIGN.md, "Host-side parallelism vs. the
/// paper's timing model").
struct ExecPolicy {
  /// Worker threads for the batch. <= 1 executes inline on the caller.
  int num_threads = 1;
  /// Candidate rows per blocked-kernel call / per parallel work chunk.
  size_t block_size = 512;
  /// Use the SIMD-friendly blocked batch kernels (SquaredEuclideanBatch
  /// and friends) instead of the scalar per-row kernels where an algorithm
  /// supports both. Blocked kernels compute full distances (no early
  /// abandoning) with a different floating-point association, so flipping
  /// this flag is the one policy change that is *not* bit-identical to the
  /// default — serial and parallel runs of the *same* flag always are.
  bool blocked_kernels = false;
  /// Queries per PIM device batch for algorithms that run on a PimEngine:
  /// workers claim whole batches of this many queries and issue one
  /// DotProductBatch (tiled GEMM) per batch instead of one DotProductAll
  /// per query. Functional results, traffic and the serial-equivalent
  /// modeled PIM time are bit-identical for every value; only wall time,
  /// the device's batch_ops/queries_per_batch accounting and the modeled
  /// pipelined_ns depend on it. 1 = the paper's per-query operation.
  size_t device_batch = 1;

  bool parallel() const { return num_threads > 1; }

  static ExecPolicy Serial() { return ExecPolicy{}; }
  static ExecPolicy WithThreads(int n) {
    ExecPolicy p;
    p.num_threads = n;
    return p;
  }
};

/// Number of worker slots ParallelChunks will use for `n` items in chunks
/// of `chunk`: 1 for serial policies, else min(num_threads, #chunks).
/// Callers size per-worker scratch/stat slots with this.
size_t NumSlots(const ExecPolicy& policy, size_t n, size_t chunk);

/// Runs fn(begin, end, slot) over [0, n) in chunks of `chunk` items.
/// Serial policies invoke fn(0, n, 0) inline; parallel policies submit
/// NumSlots() workers to the shared pool, each greedily claiming chunks,
/// and block until every chunk has finished. `slot` < NumSlots() is stable
/// for the duration of one worker, so fn may use slot-indexed scratch
/// without synchronization. Chunk boundaries are deterministic; chunk ->
/// worker assignment is not, so any cross-chunk state must be slot-local
/// and merged by the caller in slot order.
void ParallelChunks(const ExecPolicy& policy, size_t n, size_t chunk,
                    const std::function<void(size_t, size_t, size_t)>& fn);

/// Process-wide worker pool backing ParallelChunks, lazily created and
/// grown to at least `min_threads` workers. Prefer ParallelChunks; this
/// accessor exists for harnesses that need raw Submit/Wait.
ThreadPool& SharedPool(size_t min_threads);

}  // namespace pimine

#endif  // PIMINE_UTIL_PARALLEL_H_
