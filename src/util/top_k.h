#ifndef PIMINE_UTIL_TOP_K_H_
#define PIMINE_UTIL_TOP_K_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace pimine {

/// One (distance, id) candidate in a kNN result.
struct Neighbor {
  double distance = 0.0;
  int32_t id = -1;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.distance == b.distance && a.id == b.id;
  }
};

/// Bounded max-heap that retains the k smallest distances seen so far.
/// This is the refinement structure of every filter-and-refine kNN
/// algorithm in the library: `threshold()` is the current pruning radius.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { PIMINE_CHECK(k > 0) << "k must be >= 1"; }

  /// Offers a candidate; keeps it only if it is among the k best.
  void Push(double distance, int32_t id) {
    if (heap_.size() < k_) {
      heap_.push_back({distance, id});
      std::push_heap(heap_.begin(), heap_.end(), Less);
    } else if (distance < heap_.front().distance) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = {distance, id};
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  /// Current k-th smallest distance, or +inf while fewer than k candidates
  /// are held. Any candidate with a lower bound above this can be pruned.
  double threshold() const {
    return heap_.size() < k_ ? HUGE_VAL : heap_.front().distance;
  }

  bool full() const { return heap_.size() == k_; }
  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// Extracts results sorted ascending by distance (ties by id).
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.id < b.id;
    });
    return out;
  }

 private:
  static bool Less(const Neighbor& a, const Neighbor& b) {
    // Max-heap on distance; break ties on id so results are deterministic.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }

  size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace pimine

#endif  // PIMINE_UTIL_TOP_K_H_
