#ifndef PIMINE_UTIL_EXACT_SUM_H_
#define PIMINE_UTIL_EXACT_SUM_H_

#include <cstdint>
#include <cstring>

namespace pimine {

/// Exact accumulator for sums of `float` values: a 256-bit two's-complement
/// fixed-point register in units of 2^-149 (the weight of the least
/// significant single-precision denormal bit). Every finite float is an
/// integer multiple of that unit, so Add() is exact, and exact integer
/// addition is associative — a tree of partial ExactSums merged in any
/// shape produces bit-identical limbs to one flat left-to-right sum. That
/// is the property the sharded k-means centroid reduction rests on: the
/// per-shard partial sums merged pairwise equal the single-device flat sum
/// exactly, for every shard count.
///
/// Capacity: values up to ~2^106 in magnitude with ~2^43 summands of that
/// size before the register could wrap — far beyond any dataset this
/// simulator programs. Inputs must be finite (no NaN/inf); callers feed
/// dataset coordinates, which the loaders validate.
class ExactSum {
 public:
  /// Adds one float exactly.
  void Add(float value) {
    uint32_t b;
    std::memcpy(&b, &value, sizeof(b));
    const uint32_t frac = b & 0x7fffffu;
    const int exp = static_cast<int>((b >> 23) & 0xffu);
    if (frac == 0 && exp == 0) return;  // +-0 contributes nothing.
    // value = mant * 2^(shift - 149): denormals keep the raw fraction at
    // shift 0; normals add the hidden bit and shift by exp - 1.
    const uint64_t mant = exp == 0 ? frac : (frac | 0x800000u);
    const int shift = exp == 0 ? 0 : exp - 1;
    uint64_t addend[kLimbs] = {};
    const int sub = shift & 63;
    const int limb = shift >> 6;
    addend[limb] = mant << sub;
    if (sub != 0 && limb + 1 < kLimbs) {
      addend[limb + 1] = mant >> (64 - sub);
    }
    if ((b >> 31) != 0) Negate(addend);
    AddLimbs(addend);
  }

  /// Adds another accumulator exactly (the tree-merge step).
  void Merge(const ExactSum& other) { AddLimbs(other.limbs_); }

  /// Rounds the exact sum to double. Deterministic: the result is a pure
  /// function of the limbs, which Add/Merge order cannot change.
  double ToDouble() const {
    uint64_t mag[kLimbs];
    std::memcpy(mag, limbs_, sizeof(mag));
    const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
    if (negative) Negate(mag);
    // High-to-low limb conversion: each limb i carries weight 2^(64i-149).
    double value = 0.0;
    for (int i = kLimbs - 1; i >= 0; --i) {
      value += Ldexp(static_cast<double>(mag[i]), 64 * i - 149);
    }
    return negative ? -value : value;
  }

  bool operator==(const ExactSum& other) const {
    return std::memcmp(limbs_, other.limbs_, sizeof(limbs_)) == 0;
  }

 private:
  static constexpr int kLimbs = 4;

  static void Negate(uint64_t limbs[kLimbs]) {
    uint64_t carry = 1;
    for (int i = 0; i < kLimbs; ++i) {
      const uint64_t t = ~limbs[i] + carry;
      carry = t < carry ? 1u : 0u;
      limbs[i] = t;
    }
  }

  void AddLimbs(const uint64_t other[kLimbs]) {
    uint64_t carry = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const uint64_t t = limbs_[i] + other[i];
      // t wrapped iff it ended below an operand; the two carries cannot
      // both fire for one limb, so carry stays 0 or 1.
      const uint64_t t2 = t + carry;
      carry = (t < other[i] ? 1u : 0u) + (t2 < carry ? 1u : 0u);
      limbs_[i] = t2;
    }
  }

  /// ldexp without pulling <cmath> into every includer: exact power-of-two
  /// scaling via exponent arithmetic on the multiplier.
  static double Ldexp(double v, int e) {
    // 2^e as a double: e in [-149 + 0, 64*3 - 149 + 64] stays well inside
    // the normal double range, so the bit-built constant is exact.
    uint64_t bits = static_cast<uint64_t>(1023 + e) << 52;
    double scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    return v * scale;
  }

  uint64_t limbs_[kLimbs] = {};
};

}  // namespace pimine

#endif  // PIMINE_UTIL_EXACT_SUM_H_
