#include "util/random.h"

#include <cmath>

namespace pimine {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace pimine
