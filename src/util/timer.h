#ifndef PIMINE_UTIL_TIMER_H_
#define PIMINE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pimine {

/// Monotonic wall-clock stopwatch used by the profiler and the benchmark
/// harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pimine

#endif  // PIMINE_UTIL_TIMER_H_
