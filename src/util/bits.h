#ifndef PIMINE_UTIL_BITS_H_
#define PIMINE_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace pimine {

/// Number of set bits in `x`.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Ceiling division for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Number of h-bit slices needed to represent a b-bit operand (Fig. 2 of the
/// paper: a 6-bit value on 2-bit cells needs 3 slices).
inline int NumSlices(int operand_bits, int cell_bits) {
  return static_cast<int>(CeilDiv(static_cast<uint64_t>(operand_bits),
                                  static_cast<uint64_t>(cell_bits)));
}

/// Extracts slice `index` (0 = least significant) of `value`, `width` bits
/// per slice.
inline uint64_t ExtractSlice(uint64_t value, int index, int width) {
  const uint64_t mask = (width >= 64) ? ~0ULL : ((1ULL << width) - 1);
  return (value >> (index * width)) & mask;
}

/// True iff `x` is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Floor of log2(x). Precondition: x > 0.
inline int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

}  // namespace pimine

#endif  // PIMINE_UTIL_BITS_H_
