#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace pimine {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      parser.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = body.find('=');
    if (eq == std::string::npos) {
      parser.flags_[body] = "";  // boolean form.
    } else if (eq == 0) {
      return Status::InvalidArgument("flag with empty name: " + token);
    } else {
      parser.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& default_value) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& key,
                           int64_t default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return default_value;
  return static_cast<int64_t>(v);
}

double FlagParser::GetDouble(const std::string& key,
                             double default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end() || it->second.empty()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') return default_value;
  return v;
}

bool FlagParser::GetBool(const std::string& key, bool default_value) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return default_value;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return default_value;
}

Status FlagParser::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::OK();
}

}  // namespace pimine
