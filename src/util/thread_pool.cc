#include "util/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace pimine {

ThreadPool::ThreadPool(size_t num_threads) {
  PIMINE_CHECK(num_threads > 0) << "thread pool needs at least one worker";
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIMINE_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  std::atomic<size_t> next(0);
  const size_t workers = pool.num_threads();
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace pimine
