#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace pimine {
namespace {

size_t NumChunks(size_t n, size_t chunk) {
  return chunk == 0 ? 1 : (n + chunk - 1) / chunk;
}

struct PoolRegistry {
  std::mutex mu;
  // Earlier (smaller) pools stay alive so callers holding a reference keep
  // a valid pool while a later caller grows the shared capacity.
  std::vector<std::unique_ptr<ThreadPool>> pools;
};

}  // namespace

size_t NumSlots(const ExecPolicy& policy, size_t n, size_t chunk) {
  if (policy.num_threads <= 1 || n == 0) return 1;
  return std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(policy.num_threads),
                          NumChunks(n, chunk)));
}

ThreadPool& SharedPool(size_t min_threads) {
  static PoolRegistry registry;
  min_threads = std::max<size_t>(1, min_threads);
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.pools.empty() ||
      registry.pools.back()->num_threads() < min_threads) {
    registry.pools.push_back(std::make_unique<ThreadPool>(min_threads));
  }
  return *registry.pools.back();
}

void ParallelChunks(const ExecPolicy& policy, size_t n, size_t chunk,
                    const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t slots = NumSlots(policy, n, chunk);
  if (slots <= 1) {
    fn(0, n, 0);
    return;
  }
  const size_t effective_chunk = chunk == 0 ? n : chunk;
  const size_t num_chunks = NumChunks(n, effective_chunk);

  ThreadPool& pool = SharedPool(static_cast<size_t>(policy.num_threads));
  std::atomic<size_t> next_chunk(0);
  std::mutex mu;
  std::condition_variable done;
  size_t pending = slots;

  for (size_t slot = 0; slot < slots; ++slot) {
    pool.Submit([&, slot] {
      for (size_t c = next_chunk.fetch_add(1); c < num_chunks;
           c = next_chunk.fetch_add(1)) {
        const size_t begin = c * effective_chunk;
        const size_t end = std::min(n, begin + effective_chunk);
        fn(begin, end, slot);
      }
      {
        // Notify while holding the lock: the caller owns mu/done on its
        // stack and destroys them as soon as wait() returns, which it can
        // only do after this worker releases mu — signalling outside the
        // lock could touch a destroyed condition variable.
        std::lock_guard<std::mutex> lock(mu);
        --pending;
        if (pending == 0) done.notify_one();
      }
    });
  }
  // Wait for this batch only (the pool is shared; ThreadPool::Wait would
  // also wait on unrelated submissions). The condition-variable handshake
  // provides the happens-before edge that makes worker-thread side effects
  // (results, thread-local traffic counters) visible to the caller.
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return pending == 0; });
}

}  // namespace pimine
