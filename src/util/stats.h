#ifndef PIMINE_UTIL_STATS_H_
#define PIMINE_UTIL_STATS_H_

#include <cmath>
#include <cstddef>
#include <span>

namespace pimine {

/// Single-pass running mean / variance (Welford). Used for segment
/// statistics in the FNN/SM bounds and for dataset summaries.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Population variance (divide by n), matching the paper's sigma usage.
  double variance() const {
    return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
  }
  double stddev() const { return std::sqrt(variance()); }

  double min() const { return min_; }
  double max() const { return max_; }

  void AddWithRange(double x) {
    Add(x);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = HUGE_VAL;
  double max_ = -HUGE_VAL;
};

/// Mean of a span. Returns 0 for an empty span.
double Mean(std::span<const float> values);

/// Population standard deviation of a span. Returns 0 for an empty span.
double StdDev(std::span<const float> values);

/// Mean and population stddev in one pass.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(std::span<const float> values);

}  // namespace pimine

#endif  // PIMINE_UTIL_STATS_H_
