#include "util/stats.h"

namespace pimine {

double Mean(std::span<const float> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (float v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const float> values) {
  return ComputeMeanStd(values).stddev;
}

MeanStd ComputeMeanStd(std::span<const float> values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (float v : values) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(values.size());
  out.mean = sum / n;
  const double var = sum_sq / n - out.mean * out.mean;
  out.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  return out;
}

}  // namespace pimine
