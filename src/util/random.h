#ifndef PIMINE_UTIL_RANDOM_H_
#define PIMINE_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace pimine {

/// Deterministic, fast PRNG (xoshiro256**). All stochastic components of the
/// library (dataset generators, seeding, sampling) draw from this so that
/// every experiment is reproducible from an explicit seed.
class Rng {
 public:
  /// Seeds the generator with SplitMix64 expansion of `seed`, so nearby seeds
  /// produce uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli(p).
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace pimine

#endif  // PIMINE_UTIL_RANDOM_H_
