// Document-clustering scenario (the paper's k-means workload on the Enron
// corpus): cluster sparse bag-of-words-style vectors with Yinyang k-means,
// with and without the PIM assign-step filter. Demonstrates that the PIM
// variant follows the exact same trajectory (identical assignments and
// inertia) while computing a fraction of the exact distances.
//
// Build & run:  ./build/examples/document_clustering

#include <cstdio>
#include <vector>

#include "data/catalog.h"
#include "data/generator.h"
#include "kmeans/yinyang.h"
#include "profiling/modeled_time.h"

using namespace pimine;

int main() {
  auto spec = Catalog::Find("Enron");
  PIMINE_CHECK(spec.ok());
  const FloatMatrix docs = DatasetGenerator::Generate(*spec, 3000, 21);
  std::printf("corpus: %zu documents x %zu terms (%.1f MB)\n", docs.rows(),
              docs.cols(), docs.SizeBytes() / 1e6);

  KmeansOptions options;
  options.k = 32;
  options.max_iterations = 8;
  options.seed = 5;

  YinyangKmeans yinyang;
  auto base = yinyang.Run(docs, options);
  PIMINE_CHECK(base.ok());

  options.use_pim = true;
  auto accel = yinyang.Run(docs, options);
  PIMINE_CHECK(accel.ok());

  const HostCostModel model;
  const double base_ms =
      ComposeModeledTime(base->stats, model).total_ms() / base->iterations;
  const double accel_ms =
      ComposeModeledTime(accel->stats, model).total_ms() / accel->iterations;

  std::printf(
      "Yinyang:      %d iterations, inertia %.4f, %llu exact distances, "
      "%.2f model-ms/iter\n",
      base->iterations, base->inertia,
      (unsigned long long)base->stats.exact_count, base_ms);
  std::printf(
      "Yinyang-PIM:  %d iterations, inertia %.4f, %llu exact distances, "
      "%.2f model-ms/iter (%.1fx)\n",
      accel->iterations, accel->inertia,
      (unsigned long long)accel->stats.exact_count, accel_ms,
      base_ms / accel_ms);
  PIMINE_CHECK(base->assignments == accel->assignments)
      << "PIM filtering must not change the clustering";

  // Cluster-size histogram from the PIM run.
  std::vector<int> sizes(options.k, 0);
  for (int32_t a : accel->assignments) ++sizes[a];
  std::printf("cluster sizes: ");
  for (int s : sizes) std::printf("%d ", s);
  std::printf("\nresults identical: yes\n");
  return 0;
}
