// Image-retrieval scenario (the paper's motivating kNN workload): find the
// k most similar images to a query by descriptor distance, two ways.
//
//  * float descriptors, squared Euclidean distance, PIM-accelerated
//    filter-and-refine (Standard vs Standard-PIM);
//  * compact SimHash binary codes + Hamming distance (LSH shortcut, Fig. 14
//    workload), exact on PIM.
//
// Shows the normalization flow a user with raw (unnormalized) features
// follows: MinMaxScaler::Fit on the corpus, Transform both corpus and
// queries.
//
// Build & run:  ./build/examples/image_retrieval

#include <cstdio>

#include "data/generator.h"
#include "data/normalize.h"
#include "data/simhash.h"
#include "knn/hamming_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "profiling/modeled_time.h"
#include "util/random.h"

using namespace pimine;

namespace {

// Stand-in for an image-descriptor corpus: raw (unnormalized) features.
FloatMatrix RawDescriptors(size_t n, size_t d, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "descriptors";
  spec.dims = static_cast<int32_t>(d);
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 32;
  spec.cluster_std = 0.08;
  FloatMatrix unit = DatasetGenerator::Generate(spec, (int64_t)n, seed);
  // De-normalize to look like raw features (e.g. unnormalized GIST).
  Rng rng(seed + 7);
  std::vector<float> scale(d), offset(d);
  for (size_t j = 0; j < d; ++j) {
    scale[j] = static_cast<float>(rng.NextUniform(0.5, 40.0));
    offset[j] = static_cast<float>(rng.NextUniform(-10.0, 10.0));
  }
  for (size_t i = 0; i < unit.rows(); ++i) {
    auto row = unit.mutable_row(i);
    for (size_t j = 0; j < d; ++j) row[j] = row[j] * scale[j] + offset[j];
  }
  return unit;
}

}  // namespace

int main() {
  const size_t kCorpus = 10000;
  const size_t kDims = 256;
  const int k = 5;
  const FloatMatrix raw = RawDescriptors(kCorpus, kDims, 11);
  // Queries: lightly perturbed corpus images (near-duplicate retrieval).
  FloatMatrix raw_queries(8, kDims);
  {
    Rng rng(12);
    for (size_t i = 0; i < raw_queries.rows(); ++i) {
      const auto src = raw.row(rng.NextBounded(kCorpus));
      auto dst = raw_queries.mutable_row(i);
      for (size_t j = 0; j < kDims; ++j) {
        dst[j] = src[j] * (1.0f + 0.02f * (float)rng.NextGaussian());
      }
    }
  }

  // Normalize with the corpus' scaler (queries use the same one!).
  const MinMaxScaler scaler = MinMaxScaler::Fit(raw);
  const FloatMatrix corpus = scaler.Transform(raw);
  const FloatMatrix queries = scaler.Transform(raw_queries);

  const HostCostModel model;

  // --- exact retrieval, baseline vs PIM ----------------------------------
  StandardKnn baseline;
  PIMINE_CHECK_OK(baseline.Prepare(corpus));
  auto base = baseline.Search(queries, k);
  PIMINE_CHECK(base.ok());

  StandardPimKnn pim(Distance::kEuclidean, EngineOptions());
  PIMINE_CHECK_OK(pim.Prepare(corpus));
  auto accel = pim.Search(queries, k);
  PIMINE_CHECK(accel.ok());

  std::printf("query 0 top-%d (exact ED):      ", k);
  for (const auto& nb : base->neighbors[0]) std::printf("%d ", nb.id);
  std::printf("\nquery 0 top-%d (PIM-assisted):  ", k);
  for (const auto& nb : accel->neighbors[0]) std::printf("%d ", nb.id);
  const double base_ms = ComposeModeledTime(base->stats, model).total_ms();
  const double accel_ms = ComposeModeledTime(accel->stats, model).total_ms();
  std::printf(
      "\nidentical results; modeled time %.2f ms -> %.2f ms (%.1fx), exact "
      "distances %llu -> %llu\n\n",
      base_ms, accel_ms, base_ms / accel_ms,
      (unsigned long long)base->stats.exact_count,
      (unsigned long long)accel->stats.exact_count);

  // --- compact-code retrieval (LSH + Hamming on PIM) ----------------------
  const SimHashEncoder encoder(kDims, /*num_bits=*/512, /*seed=*/13);
  const BitMatrix codes = encoder.Encode(corpus);
  const BitMatrix query_codes = encoder.Encode(queries);

  HammingPimKnn hamming;
  PIMINE_CHECK_OK(hamming.Prepare(codes));
  auto hd = hamming.Search(query_codes, k);
  PIMINE_CHECK(hd.ok());
  std::printf("query 0 top-%d (512-bit SimHash): ", k);
  for (const auto& nb : hd->neighbors[0]) {
    std::printf("%d(hd=%d) ", nb.id, (int)nb.distance);
  }
  // How well does the compact code preserve the exact top-k?
  size_t overlap = 0;
  for (const auto& a : hd->neighbors[0]) {
    for (const auto& b : base->neighbors[0]) {
      if (a.id == b.id) ++overlap;
    }
  }
  std::printf("\ncode/exact top-%d overlap: %zu of %d\n", k, overlap, k);
  return 0;
}
