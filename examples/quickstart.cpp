// Quickstart: the smallest end-to-end use of pimine.
//
// 1. Generate a small dataset (values in [0, 1]).
// 2. Build a PimEngine: quantizes the data (Eq. 5-6), plans the crossbar
//    layout (Theorem 4), programs the simulated ReRAM PIM array, and
//    pre-computes the Phi terms of the PIM-aware bound.
// 3. Run a query: one PIM batch dot-product + O(1) host work per object
//    yields a lower bound on every squared Euclidean distance.
// 4. Use the bounds to find the exact nearest neighbour while computing
//    only a handful of exact distances.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "core/similarity.h"
#include "data/generator.h"
#include "pim/crossbar.h"

using namespace pimine;

int main() {
  // --- the Fig. 1 crossbar, cycle by cycle -------------------------------
  Crossbar xbar(4, /*cell_bits=*/2);
  PIMINE_CHECK_OK(xbar.ProgramVector(0, std::vector<uint32_t>{3, 1, 0}, 2));
  PIMINE_CHECK_OK(xbar.ProgramVector(1, std::vector<uint32_t>{1, 2, 3}, 2));
  PIMINE_CHECK_OK(xbar.ProgramVector(2, std::vector<uint32_t>{2, 0, 1}, 2));
  auto dot = xbar.DotProduct(std::vector<uint32_t>{3, 1, 2}, 2, 2, 2);
  PIMINE_CHECK(dot.ok());
  std::printf("Fig. 1 crossbar dot products: [%llu, %llu, %llu]\n",
              (unsigned long long)dot->values[0],
              (unsigned long long)dot->values[1],
              (unsigned long long)dot->values[2]);

  // --- a similarity engine on generated data -----------------------------
  DatasetSpec spec;
  spec.name = "quickstart";
  spec.dims = 64;
  spec.profile = ClusterProfile::kClustered;
  spec.num_clusters = 8;
  spec.cluster_std = 0.08;
  const FloatMatrix data = DatasetGenerator::Generate(spec, 2000, /*seed=*/1);
  const FloatMatrix queries =
      DatasetGenerator::GenerateQueries(spec, data, 1, /*seed=*/2);

  auto engine = PimEngine::Build(data, Distance::kEuclidean, EngineOptions());
  PIMINE_CHECK(engine.ok()) << engine.status().ToString();
  std::printf("engine mode: %.*s, objects: %zu, layout: %s\n",
              (int)EngineModeName((*engine)->mode()).size(),
              EngineModeName((*engine)->mode()).data(),
              (*engine)->num_objects(), (*engine)->plan().ToString().c_str());

  const auto q = queries.row(0);
  std::vector<double> bounds;
  PIMINE_CHECK_OK((*engine)->ComputeBounds(q, &bounds));

  // Filter-and-refine: examine candidates in ascending bound order, stop
  // when the bound exceeds the best exact distance seen.
  std::vector<uint32_t> order(data.rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = (uint32_t)i;
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return bounds[a] < bounds[b]; });

  double best = HUGE_VAL;
  uint32_t best_id = 0;
  size_t exact_computed = 0;
  for (uint32_t idx : order) {
    if (bounds[idx] >= best) break;  // everything after is pruned too.
    const double d = SquaredEuclidean(data.row(idx), q);
    ++exact_computed;
    if (d < best) {
      best = d;
      best_id = idx;
    }
  }
  std::printf(
      "nearest neighbour: object %u (squared ED %.6f)\n"
      "exact distances computed: %zu of %zu (PIM bounds pruned %.1f%%)\n"
      "modeled PIM time: %.1f us; bits moved per candidate: %.0f (vs %.0f "
      "for a full scan)\n",
      best_id, best, exact_computed, data.rows(),
      100.0 * (1.0 - (double)exact_computed / data.rows()),
      (*engine)->PimComputeNs() / 1e3, (*engine)->TransferBitsPerCandidate(),
      64.0 * 8 * sizeof(float));
  return 0;
}
