// Hardware planning walkthrough: how Theorem 4 (PIM memory management,
// §V-C) and Eq. 13 (execution-plan optimization, §V-D) react to the PIM
// array budget. For a fixed dataset it sweeps the number of crossbars,
// showing the chosen compressed dimensionality s, the crossbar split
// (data vs gather), and the execution plan the optimizer would run.
//
// Build & run:  ./build/examples/plan_explorer

#include <cstdio>

#include "core/memory_planner.h"
#include "core/plan.h"
#include "data/catalog.h"
#include "data/generator.h"
#include "knn/fnn_pim_knn.h"

using namespace pimine;

int main() {
  auto spec = Catalog::Find("MSD");
  PIMINE_CHECK(spec.ok());
  const int64_t n = 8000;
  const FloatMatrix data = DatasetGenerator::Generate(*spec, n, 31);

  std::printf("dataset: %lld vectors x %d dims, 32-bit operands, two\n"
              "matrices to program (segment means + stddevs)\n\n",
              (long long)n, spec->dims);
  std::printf("%-12s %-6s %-12s %-10s %s\n", "crossbars", "s", "compressed",
              "ndata", "ngather");
  for (int64_t crossbars : {64, 128, 256, 512, 1024, 4096, 131072}) {
    PimConfig config;
    config.num_crossbars = crossbars;
    auto plan = PlanPimLayout(n, spec->dims, 32, /*copies=*/2, config);
    if (!plan.ok()) {
      std::printf("%-12lld (does not fit: %s)\n", (long long)crossbars,
                  plan.status().ToString().c_str());
      continue;
    }
    std::printf("%-12lld %-6lld %-12s %-10lld %lld\n", (long long)crossbars,
                (long long)plan->s, plan->compressed ? "yes" : "no",
                (long long)plan->data_crossbars,
                (long long)plan->gather_crossbars);
  }

  // Execution plans under two budgets: generous vs tight.
  for (int64_t crossbars : {4096, 256}) {
    EngineOptions options;
    options.pim_config.num_crossbars = crossbars;
    FnnPimKnn algorithm(options, /*optimize=*/true);
    PIMINE_CHECK_OK(algorithm.Prepare(data));
    std::printf("\nbudget %lld crossbars -> plan %s\n", (long long)crossbars,
                algorithm.plan().ToString(algorithm.candidates()).c_str());
    for (const BoundCandidate& c : algorithm.candidates()) {
      std::printf("  %-18s %6.0f bits/candidate, prunes %5.1f%% "
                  "(conditional)\n",
                  c.name.c_str(), c.transfer_bits, 100.0 * c.pruning_ratio);
    }
  }
  return 0;
}
