# Empty dependencies file for bench_fig17_preprocess.
# This may be replaced when dependencies are built.
