file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_preprocess.dir/bench_fig17_preprocess.cc.o"
  "CMakeFiles/bench_fig17_preprocess.dir/bench_fig17_preprocess.cc.o.d"
  "bench_fig17_preprocess"
  "bench_fig17_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
