# Empty dependencies file for bench_ext_accuracy.
# This may be replaced when dependencies are built.
