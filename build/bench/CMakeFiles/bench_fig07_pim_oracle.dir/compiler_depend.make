# Empty compiler generated dependencies file for bench_fig07_pim_oracle.
# This may be replaced when dependencies are built.
