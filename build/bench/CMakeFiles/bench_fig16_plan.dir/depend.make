# Empty dependencies file for bench_fig16_plan.
# This may be replaced when dependencies are built.
