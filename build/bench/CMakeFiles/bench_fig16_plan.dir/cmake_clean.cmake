file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_plan.dir/bench_fig16_plan.cc.o"
  "CMakeFiles/bench_fig16_plan.dir/bench_fig16_plan.cc.o.d"
  "bench_fig16_plan"
  "bench_fig16_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
