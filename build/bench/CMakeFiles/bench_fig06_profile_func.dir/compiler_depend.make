# Empty compiler generated dependencies file for bench_fig06_profile_func.
# This may be replaced when dependencies are built.
