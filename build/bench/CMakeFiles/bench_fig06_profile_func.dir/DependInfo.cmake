
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig06_profile_func.cc" "bench/CMakeFiles/bench_fig06_profile_func.dir/bench_fig06_profile_func.cc.o" "gcc" "bench/CMakeFiles/bench_fig06_profile_func.dir/bench_fig06_profile_func.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pimine_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/knn/CMakeFiles/pimine_knn.dir/DependInfo.cmake"
  "/root/repo/build/src/kmeans/CMakeFiles/pimine_kmeans.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pimine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pimine_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pimine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/pimine_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pimine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
