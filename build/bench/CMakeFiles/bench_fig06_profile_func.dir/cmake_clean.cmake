file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_profile_func.dir/bench_fig06_profile_func.cc.o"
  "CMakeFiles/bench_fig06_profile_func.dir/bench_fig06_profile_func.cc.o.d"
  "bench_fig06_profile_func"
  "bench_fig06_profile_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_profile_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
