file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_transfer.dir/bench_fig08_transfer.cc.o"
  "CMakeFiles/bench_fig08_transfer.dir/bench_fig08_transfer.cc.o.d"
  "bench_fig08_transfer"
  "bench_fig08_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
