# Empty dependencies file for bench_fig08_transfer.
# This may be replaced when dependencies are built.
