# Empty compiler generated dependencies file for bench_ext_outlier.
# This may be replaced when dependencies are built.
