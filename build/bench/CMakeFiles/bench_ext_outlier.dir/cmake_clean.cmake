file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_outlier.dir/bench_ext_outlier.cc.o"
  "CMakeFiles/bench_ext_outlier.dir/bench_ext_outlier.cc.o.d"
  "bench_ext_outlier"
  "bench_ext_outlier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_outlier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
