file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pim.dir/bench_micro_pim.cc.o"
  "CMakeFiles/bench_micro_pim.dir/bench_micro_pim.cc.o.d"
  "bench_micro_pim"
  "bench_micro_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
