# Empty compiler generated dependencies file for bench_micro_pim.
# This may be replaced when dependencies are built.
