file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_kmeans.dir/bench_table7_kmeans.cc.o"
  "CMakeFiles/bench_table7_kmeans.dir/bench_table7_kmeans.cc.o.d"
  "bench_table7_kmeans"
  "bench_table7_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
