# Empty compiler generated dependencies file for bench_table7_kmeans.
# This may be replaced when dependencies are built.
