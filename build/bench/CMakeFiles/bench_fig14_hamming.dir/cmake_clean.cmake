file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_hamming.dir/bench_fig14_hamming.cc.o"
  "CMakeFiles/bench_fig14_hamming.dir/bench_fig14_hamming.cc.o.d"
  "bench_fig14_hamming"
  "bench_fig14_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
