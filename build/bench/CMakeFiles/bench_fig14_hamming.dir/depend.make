# Empty dependencies file for bench_fig14_hamming.
# This may be replaced when dependencies are built.
