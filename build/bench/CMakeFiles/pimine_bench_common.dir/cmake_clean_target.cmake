file(REMOVE_RECURSE
  "../lib/libpimine_bench_common.a"
)
