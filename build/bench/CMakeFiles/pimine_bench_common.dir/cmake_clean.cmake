file(REMOVE_RECURSE
  "../lib/libpimine_bench_common.a"
  "../lib/libpimine_bench_common.pdb"
  "CMakeFiles/pimine_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pimine_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/pimine_bench_common.dir/profile_workloads.cc.o"
  "CMakeFiles/pimine_bench_common.dir/profile_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
