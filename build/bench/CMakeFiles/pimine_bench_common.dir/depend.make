# Empty dependencies file for pimine_bench_common.
# This may be replaced when dependencies are built.
