# Empty compiler generated dependencies file for bench_fig05_profile_hw.
# This may be replaced when dependencies are built.
