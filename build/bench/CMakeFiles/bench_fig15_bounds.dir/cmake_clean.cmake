file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_bounds.dir/bench_fig15_bounds.cc.o"
  "CMakeFiles/bench_fig15_bounds.dir/bench_fig15_bounds.cc.o.d"
  "bench_fig15_bounds"
  "bench_fig15_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
