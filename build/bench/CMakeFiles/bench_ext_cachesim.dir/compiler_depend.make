# Empty compiler generated dependencies file for bench_ext_cachesim.
# This may be replaced when dependencies are built.
