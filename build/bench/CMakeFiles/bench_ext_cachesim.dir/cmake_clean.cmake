file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cachesim.dir/bench_ext_cachesim.cc.o"
  "CMakeFiles/bench_ext_cachesim.dir/bench_ext_cachesim.cc.o.d"
  "bench_ext_cachesim"
  "bench_ext_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
