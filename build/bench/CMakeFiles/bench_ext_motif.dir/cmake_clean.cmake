file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_motif.dir/bench_ext_motif.cc.o"
  "CMakeFiles/bench_ext_motif.dir/bench_ext_motif.cc.o.d"
  "bench_ext_motif"
  "bench_ext_motif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_motif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
