# Empty compiler generated dependencies file for bench_ext_motif.
# This may be replaced when dependencies are built.
