file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reprogram.dir/bench_ext_reprogram.cc.o"
  "CMakeFiles/bench_ext_reprogram.dir/bench_ext_reprogram.cc.o.d"
  "bench_ext_reprogram"
  "bench_ext_reprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
