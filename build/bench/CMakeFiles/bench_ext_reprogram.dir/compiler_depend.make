# Empty compiler generated dependencies file for bench_ext_reprogram.
# This may be replaced when dependencies are built.
