file(REMOVE_RECURSE
  "libpimine_common.a"
)
