file(REMOVE_RECURSE
  "CMakeFiles/pimine_common.dir/status.cc.o"
  "CMakeFiles/pimine_common.dir/status.cc.o.d"
  "libpimine_common.a"
  "libpimine_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
