# Empty dependencies file for pimine_common.
# This may be replaced when dependencies are built.
