file(REMOVE_RECURSE
  "CMakeFiles/pimine_kmeans.dir/drake.cc.o"
  "CMakeFiles/pimine_kmeans.dir/drake.cc.o.d"
  "CMakeFiles/pimine_kmeans.dir/elkan.cc.o"
  "CMakeFiles/pimine_kmeans.dir/elkan.cc.o.d"
  "CMakeFiles/pimine_kmeans.dir/hamerly.cc.o"
  "CMakeFiles/pimine_kmeans.dir/hamerly.cc.o.d"
  "CMakeFiles/pimine_kmeans.dir/kmeans_common.cc.o"
  "CMakeFiles/pimine_kmeans.dir/kmeans_common.cc.o.d"
  "CMakeFiles/pimine_kmeans.dir/lloyd.cc.o"
  "CMakeFiles/pimine_kmeans.dir/lloyd.cc.o.d"
  "CMakeFiles/pimine_kmeans.dir/yinyang.cc.o"
  "CMakeFiles/pimine_kmeans.dir/yinyang.cc.o.d"
  "libpimine_kmeans.a"
  "libpimine_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
