# Empty compiler generated dependencies file for pimine_kmeans.
# This may be replaced when dependencies are built.
