file(REMOVE_RECURSE
  "libpimine_kmeans.a"
)
