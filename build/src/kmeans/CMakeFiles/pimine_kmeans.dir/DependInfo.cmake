
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmeans/drake.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/drake.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/drake.cc.o.d"
  "/root/repo/src/kmeans/elkan.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/elkan.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/elkan.cc.o.d"
  "/root/repo/src/kmeans/hamerly.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/hamerly.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/hamerly.cc.o.d"
  "/root/repo/src/kmeans/kmeans_common.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/kmeans_common.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/kmeans_common.cc.o.d"
  "/root/repo/src/kmeans/lloyd.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/lloyd.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/lloyd.cc.o.d"
  "/root/repo/src/kmeans/yinyang.cc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/yinyang.cc.o" "gcc" "src/kmeans/CMakeFiles/pimine_kmeans.dir/yinyang.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pimine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/pimine_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pimine_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pimine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pimine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
