# Empty compiler generated dependencies file for pimine_data.
# This may be replaced when dependencies are built.
