file(REMOVE_RECURSE
  "CMakeFiles/pimine_data.dir/catalog.cc.o"
  "CMakeFiles/pimine_data.dir/catalog.cc.o.d"
  "CMakeFiles/pimine_data.dir/generator.cc.o"
  "CMakeFiles/pimine_data.dir/generator.cc.o.d"
  "CMakeFiles/pimine_data.dir/io.cc.o"
  "CMakeFiles/pimine_data.dir/io.cc.o.d"
  "CMakeFiles/pimine_data.dir/normalize.cc.o"
  "CMakeFiles/pimine_data.dir/normalize.cc.o.d"
  "CMakeFiles/pimine_data.dir/simhash.cc.o"
  "CMakeFiles/pimine_data.dir/simhash.cc.o.d"
  "libpimine_data.a"
  "libpimine_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
