file(REMOVE_RECURSE
  "libpimine_data.a"
)
