# Empty dependencies file for pimine_pim.
# This may be replaced when dependencies are built.
