file(REMOVE_RECURSE
  "CMakeFiles/pimine_pim.dir/buffer_array.cc.o"
  "CMakeFiles/pimine_pim.dir/buffer_array.cc.o.d"
  "CMakeFiles/pimine_pim.dir/crossbar.cc.o"
  "CMakeFiles/pimine_pim.dir/crossbar.cc.o.d"
  "CMakeFiles/pimine_pim.dir/crossbar_math.cc.o"
  "CMakeFiles/pimine_pim.dir/crossbar_math.cc.o.d"
  "CMakeFiles/pimine_pim.dir/pim_config.cc.o"
  "CMakeFiles/pimine_pim.dir/pim_config.cc.o.d"
  "CMakeFiles/pimine_pim.dir/pim_device.cc.o"
  "CMakeFiles/pimine_pim.dir/pim_device.cc.o.d"
  "CMakeFiles/pimine_pim.dir/timing.cc.o"
  "CMakeFiles/pimine_pim.dir/timing.cc.o.d"
  "libpimine_pim.a"
  "libpimine_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
