
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/buffer_array.cc" "src/pim/CMakeFiles/pimine_pim.dir/buffer_array.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/buffer_array.cc.o.d"
  "/root/repo/src/pim/crossbar.cc" "src/pim/CMakeFiles/pimine_pim.dir/crossbar.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/crossbar.cc.o.d"
  "/root/repo/src/pim/crossbar_math.cc" "src/pim/CMakeFiles/pimine_pim.dir/crossbar_math.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/crossbar_math.cc.o.d"
  "/root/repo/src/pim/pim_config.cc" "src/pim/CMakeFiles/pimine_pim.dir/pim_config.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/pim_config.cc.o.d"
  "/root/repo/src/pim/pim_device.cc" "src/pim/CMakeFiles/pimine_pim.dir/pim_device.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/pim_device.cc.o.d"
  "/root/repo/src/pim/timing.cc" "src/pim/CMakeFiles/pimine_pim.dir/timing.cc.o" "gcc" "src/pim/CMakeFiles/pimine_pim.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pimine_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
