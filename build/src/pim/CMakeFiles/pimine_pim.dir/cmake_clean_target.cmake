file(REMOVE_RECURSE
  "libpimine_pim.a"
)
