
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knn/approximate_pim_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/approximate_pim_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/approximate_pim_knn.cc.o.d"
  "/root/repo/src/knn/fnn_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/fnn_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/fnn_knn.cc.o.d"
  "/root/repo/src/knn/fnn_pim_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/fnn_pim_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/fnn_pim_knn.cc.o.d"
  "/root/repo/src/knn/hamming_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/hamming_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/hamming_knn.cc.o.d"
  "/root/repo/src/knn/knn_common.cc" "src/knn/CMakeFiles/pimine_knn.dir/knn_common.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/knn_common.cc.o.d"
  "/root/repo/src/knn/motif.cc" "src/knn/CMakeFiles/pimine_knn.dir/motif.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/motif.cc.o.d"
  "/root/repo/src/knn/ost_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/ost_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/ost_knn.cc.o.d"
  "/root/repo/src/knn/ost_pim_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/ost_pim_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/ost_pim_knn.cc.o.d"
  "/root/repo/src/knn/outlier.cc" "src/knn/CMakeFiles/pimine_knn.dir/outlier.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/outlier.cc.o.d"
  "/root/repo/src/knn/sm_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/sm_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/sm_knn.cc.o.d"
  "/root/repo/src/knn/sm_pim_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/sm_pim_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/sm_pim_knn.cc.o.d"
  "/root/repo/src/knn/standard_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/standard_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/standard_knn.cc.o.d"
  "/root/repo/src/knn/standard_pim_knn.cc" "src/knn/CMakeFiles/pimine_knn.dir/standard_pim_knn.cc.o" "gcc" "src/knn/CMakeFiles/pimine_knn.dir/standard_pim_knn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pimine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/pimine_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pimine_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pimine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pimine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
