file(REMOVE_RECURSE
  "libpimine_knn.a"
)
