# Empty compiler generated dependencies file for pimine_knn.
# This may be replaced when dependencies are built.
