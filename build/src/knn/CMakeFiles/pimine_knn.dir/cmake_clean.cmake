file(REMOVE_RECURSE
  "CMakeFiles/pimine_knn.dir/approximate_pim_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/approximate_pim_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/fnn_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/fnn_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/fnn_pim_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/fnn_pim_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/hamming_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/hamming_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/knn_common.cc.o"
  "CMakeFiles/pimine_knn.dir/knn_common.cc.o.d"
  "CMakeFiles/pimine_knn.dir/motif.cc.o"
  "CMakeFiles/pimine_knn.dir/motif.cc.o.d"
  "CMakeFiles/pimine_knn.dir/ost_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/ost_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/ost_pim_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/ost_pim_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/outlier.cc.o"
  "CMakeFiles/pimine_knn.dir/outlier.cc.o.d"
  "CMakeFiles/pimine_knn.dir/sm_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/sm_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/sm_pim_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/sm_pim_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/standard_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/standard_knn.cc.o.d"
  "CMakeFiles/pimine_knn.dir/standard_pim_knn.cc.o"
  "CMakeFiles/pimine_knn.dir/standard_pim_knn.cc.o.d"
  "libpimine_knn.a"
  "libpimine_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
