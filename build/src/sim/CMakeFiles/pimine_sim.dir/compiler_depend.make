# Empty compiler generated dependencies file for pimine_sim.
# This may be replaced when dependencies are built.
