file(REMOVE_RECURSE
  "CMakeFiles/pimine_sim.dir/cache_sim.cc.o"
  "CMakeFiles/pimine_sim.dir/cache_sim.cc.o.d"
  "CMakeFiles/pimine_sim.dir/cost_model.cc.o"
  "CMakeFiles/pimine_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/pimine_sim.dir/platform.cc.o"
  "CMakeFiles/pimine_sim.dir/platform.cc.o.d"
  "CMakeFiles/pimine_sim.dir/traffic.cc.o"
  "CMakeFiles/pimine_sim.dir/traffic.cc.o.d"
  "libpimine_sim.a"
  "libpimine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
