file(REMOVE_RECURSE
  "libpimine_sim.a"
)
