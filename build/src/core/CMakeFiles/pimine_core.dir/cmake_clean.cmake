file(REMOVE_RECURSE
  "CMakeFiles/pimine_core.dir/bounds.cc.o"
  "CMakeFiles/pimine_core.dir/bounds.cc.o.d"
  "CMakeFiles/pimine_core.dir/decompose.cc.o"
  "CMakeFiles/pimine_core.dir/decompose.cc.o.d"
  "CMakeFiles/pimine_core.dir/engine.cc.o"
  "CMakeFiles/pimine_core.dir/engine.cc.o.d"
  "CMakeFiles/pimine_core.dir/hamming_engine.cc.o"
  "CMakeFiles/pimine_core.dir/hamming_engine.cc.o.d"
  "CMakeFiles/pimine_core.dir/memory_planner.cc.o"
  "CMakeFiles/pimine_core.dir/memory_planner.cc.o.d"
  "CMakeFiles/pimine_core.dir/partitioned_engine.cc.o"
  "CMakeFiles/pimine_core.dir/partitioned_engine.cc.o.d"
  "CMakeFiles/pimine_core.dir/pim_bounds.cc.o"
  "CMakeFiles/pimine_core.dir/pim_bounds.cc.o.d"
  "CMakeFiles/pimine_core.dir/plan.cc.o"
  "CMakeFiles/pimine_core.dir/plan.cc.o.d"
  "CMakeFiles/pimine_core.dir/quantize.cc.o"
  "CMakeFiles/pimine_core.dir/quantize.cc.o.d"
  "CMakeFiles/pimine_core.dir/segments.cc.o"
  "CMakeFiles/pimine_core.dir/segments.cc.o.d"
  "CMakeFiles/pimine_core.dir/similarity.cc.o"
  "CMakeFiles/pimine_core.dir/similarity.cc.o.d"
  "libpimine_core.a"
  "libpimine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
