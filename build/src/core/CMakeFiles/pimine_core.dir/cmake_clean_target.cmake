file(REMOVE_RECURSE
  "libpimine_core.a"
)
