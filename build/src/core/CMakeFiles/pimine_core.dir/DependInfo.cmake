
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/core/CMakeFiles/pimine_core.dir/bounds.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/bounds.cc.o.d"
  "/root/repo/src/core/decompose.cc" "src/core/CMakeFiles/pimine_core.dir/decompose.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/decompose.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/pimine_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/engine.cc.o.d"
  "/root/repo/src/core/hamming_engine.cc" "src/core/CMakeFiles/pimine_core.dir/hamming_engine.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/hamming_engine.cc.o.d"
  "/root/repo/src/core/memory_planner.cc" "src/core/CMakeFiles/pimine_core.dir/memory_planner.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/memory_planner.cc.o.d"
  "/root/repo/src/core/partitioned_engine.cc" "src/core/CMakeFiles/pimine_core.dir/partitioned_engine.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/partitioned_engine.cc.o.d"
  "/root/repo/src/core/pim_bounds.cc" "src/core/CMakeFiles/pimine_core.dir/pim_bounds.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/pim_bounds.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/pimine_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/plan.cc.o.d"
  "/root/repo/src/core/quantize.cc" "src/core/CMakeFiles/pimine_core.dir/quantize.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/quantize.cc.o.d"
  "/root/repo/src/core/segments.cc" "src/core/CMakeFiles/pimine_core.dir/segments.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/segments.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/pimine_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/pimine_core.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pimine_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pimine_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/pimine_pim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
