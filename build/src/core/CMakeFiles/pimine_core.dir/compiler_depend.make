# Empty compiler generated dependencies file for pimine_core.
# This may be replaced when dependencies are built.
