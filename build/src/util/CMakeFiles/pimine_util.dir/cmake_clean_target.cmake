file(REMOVE_RECURSE
  "libpimine_util.a"
)
