# Empty dependencies file for pimine_util.
# This may be replaced when dependencies are built.
