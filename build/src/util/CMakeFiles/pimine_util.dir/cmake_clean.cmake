file(REMOVE_RECURSE
  "CMakeFiles/pimine_util.dir/flags.cc.o"
  "CMakeFiles/pimine_util.dir/flags.cc.o.d"
  "CMakeFiles/pimine_util.dir/random.cc.o"
  "CMakeFiles/pimine_util.dir/random.cc.o.d"
  "CMakeFiles/pimine_util.dir/stats.cc.o"
  "CMakeFiles/pimine_util.dir/stats.cc.o.d"
  "CMakeFiles/pimine_util.dir/thread_pool.cc.o"
  "CMakeFiles/pimine_util.dir/thread_pool.cc.o.d"
  "libpimine_util.a"
  "libpimine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
