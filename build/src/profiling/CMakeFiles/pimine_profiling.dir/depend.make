# Empty dependencies file for pimine_profiling.
# This may be replaced when dependencies are built.
