
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/function_profiler.cc" "src/profiling/CMakeFiles/pimine_profiling.dir/function_profiler.cc.o" "gcc" "src/profiling/CMakeFiles/pimine_profiling.dir/function_profiler.cc.o.d"
  "/root/repo/src/profiling/modeled_time.cc" "src/profiling/CMakeFiles/pimine_profiling.dir/modeled_time.cc.o" "gcc" "src/profiling/CMakeFiles/pimine_profiling.dir/modeled_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pimine_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pimine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pimine_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
