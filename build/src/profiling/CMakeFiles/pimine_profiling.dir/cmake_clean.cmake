file(REMOVE_RECURSE
  "CMakeFiles/pimine_profiling.dir/function_profiler.cc.o"
  "CMakeFiles/pimine_profiling.dir/function_profiler.cc.o.d"
  "CMakeFiles/pimine_profiling.dir/modeled_time.cc.o"
  "CMakeFiles/pimine_profiling.dir/modeled_time.cc.o.d"
  "libpimine_profiling.a"
  "libpimine_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
