file(REMOVE_RECURSE
  "libpimine_profiling.a"
)
