# Empty compiler generated dependencies file for pimine_cli.
# This may be replaced when dependencies are built.
