file(REMOVE_RECURSE
  "CMakeFiles/pimine_cli.dir/pimine_cli.cc.o"
  "CMakeFiles/pimine_cli.dir/pimine_cli.cc.o.d"
  "pimine_cli"
  "pimine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
