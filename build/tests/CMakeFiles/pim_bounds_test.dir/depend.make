# Empty dependencies file for pim_bounds_test.
# This may be replaced when dependencies are built.
