file(REMOVE_RECURSE
  "CMakeFiles/pim_bounds_test.dir/pim_bounds_test.cc.o"
  "CMakeFiles/pim_bounds_test.dir/pim_bounds_test.cc.o.d"
  "pim_bounds_test"
  "pim_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
