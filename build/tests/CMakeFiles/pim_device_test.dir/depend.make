# Empty dependencies file for pim_device_test.
# This may be replaced when dependencies are built.
