file(REMOVE_RECURSE
  "CMakeFiles/pim_device_test.dir/pim_device_test.cc.o"
  "CMakeFiles/pim_device_test.dir/pim_device_test.cc.o.d"
  "pim_device_test"
  "pim_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
