# Empty dependencies file for crossbar_math_test.
# This may be replaced when dependencies are built.
