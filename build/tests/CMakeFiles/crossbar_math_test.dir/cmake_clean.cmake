file(REMOVE_RECURSE
  "CMakeFiles/crossbar_math_test.dir/crossbar_math_test.cc.o"
  "CMakeFiles/crossbar_math_test.dir/crossbar_math_test.cc.o.d"
  "crossbar_math_test"
  "crossbar_math_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
