file(REMOVE_RECURSE
  "CMakeFiles/approximate_pim_test.dir/approximate_pim_test.cc.o"
  "CMakeFiles/approximate_pim_test.dir/approximate_pim_test.cc.o.d"
  "approximate_pim_test"
  "approximate_pim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_pim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
