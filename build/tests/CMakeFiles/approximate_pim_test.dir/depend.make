# Empty dependencies file for approximate_pim_test.
# This may be replaced when dependencies are built.
