# Empty dependencies file for engine_geometry_test.
# This may be replaced when dependencies are built.
