file(REMOVE_RECURSE
  "CMakeFiles/engine_geometry_test.dir/engine_geometry_test.cc.o"
  "CMakeFiles/engine_geometry_test.dir/engine_geometry_test.cc.o.d"
  "engine_geometry_test"
  "engine_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
