# Empty dependencies file for hamming_engine_test.
# This may be replaced when dependencies are built.
