file(REMOVE_RECURSE
  "CMakeFiles/hamming_engine_test.dir/hamming_engine_test.cc.o"
  "CMakeFiles/hamming_engine_test.dir/hamming_engine_test.cc.o.d"
  "hamming_engine_test"
  "hamming_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hamming_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
