file(REMOVE_RECURSE
  "CMakeFiles/partitioned_engine_test.dir/partitioned_engine_test.cc.o"
  "CMakeFiles/partitioned_engine_test.dir/partitioned_engine_test.cc.o.d"
  "partitioned_engine_test"
  "partitioned_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
