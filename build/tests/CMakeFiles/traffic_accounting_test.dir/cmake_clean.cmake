file(REMOVE_RECURSE
  "CMakeFiles/traffic_accounting_test.dir/traffic_accounting_test.cc.o"
  "CMakeFiles/traffic_accounting_test.dir/traffic_accounting_test.cc.o.d"
  "traffic_accounting_test"
  "traffic_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
