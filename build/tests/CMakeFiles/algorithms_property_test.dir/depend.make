# Empty dependencies file for algorithms_property_test.
# This may be replaced when dependencies are built.
