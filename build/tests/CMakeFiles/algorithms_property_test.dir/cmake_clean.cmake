file(REMOVE_RECURSE
  "CMakeFiles/algorithms_property_test.dir/algorithms_property_test.cc.o"
  "CMakeFiles/algorithms_property_test.dir/algorithms_property_test.cc.o.d"
  "algorithms_property_test"
  "algorithms_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
