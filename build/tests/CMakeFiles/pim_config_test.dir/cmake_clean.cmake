file(REMOVE_RECURSE
  "CMakeFiles/pim_config_test.dir/pim_config_test.cc.o"
  "CMakeFiles/pim_config_test.dir/pim_config_test.cc.o.d"
  "pim_config_test"
  "pim_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pim_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
