// Online serving front-end: a long-running pimine kNN service with
// continuous device batching (DESIGN.md section 10).
//
//   pimine_serve replay --dataset=MSD --requests=512 --qps=2e6
//       [--max_batch=16] [--max_wait_us=1000] [--deadline_us=0]
//       [--capacity=1024] [--threads=1] [--k=10] [--device_batch=16]
//       [--shards=1] [--tenants=gold:4,free:1] [--shares=4,1] [--seed=42]
//       [--distance=ED|CS|PCC] [--metrics_out=m.prom]
//
//   pimine_serve live --dataset=MSD --requests=256 --clients=4
//       [--max_batch=16] [--max_wait_us=200] [--capacity=1024]
//       [--threads=2] [--k=10] [--device_batch=16]
//       [--metrics_port=9464] [--linger_ms=0]
//
// `replay` drives the scheduler from a deterministic recorded arrival
// trace against the virtual clock: identical flags print identical
// numbers, byte for byte, for any --threads. `live` starts real scheduler
// workers and hammers them from concurrent client threads (wall-clock
// timings; a smoke/demo mode, not a reproducible measurement).
//
// --metrics_port mounts the embedded read-only HTTP endpoint on
// 127.0.0.1 with GET /metrics (Prometheus exposition), /healthz,
// /timeseries.json (rolling windows) and /events.jsonl (sampled query
// events); --linger_ms keeps serving mounted after the clients finish so
// an external scraper can read the end-of-run state (the CI smoke job).
// Replay instead writes the deterministic telemetry documents with
// --timeseries_out / --events_out (--event_sample enables sampling).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/exposition_server.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "serve/workload.h"
#include "util/flags.h"

namespace pimine {
namespace cli {
namespace {

using bench::Fmt;
using bench::LoadWorkload;
using bench::ScaledEngineOptions;
using bench::TablePrinter;

int Usage() {
  std::cerr <<
      "usage: pimine_serve <replay|live> [--flags]\n"
      "  replay  --dataset=<name> [--requests=512] [--qps=2e6] [--seed=42]\n"
      "          [--max_batch=16] [--max_wait_us=1000] [--deadline_us=0]\n"
      "          [--capacity=1024] [--threads=1] [--k=10] [--n=0]\n"
      "          [--queries=64] [--device_batch=16] [--shards=1]\n"
      "          [--distance=ED|CS|PCC] [--tenants=gold:4,free:1]\n"
      "          [--shares=4,1] [--metrics_out=m.prom]\n"
      "          [--timeseries_out=ts.json] [--events_out=ev.jsonl]\n"
      "          [--event_sample=0.0] [--event_seed=0]\n"
      "          [--replicas=1] [--chaos_deaths=0] [--chaos_stalls=0]\n"
      "          [--chaos_link_faults=0] [--chaos_horizon_us=0]\n"
      "          [--chaos_seed=0xC7A05] [--batch_deadline_us=0]\n"
      "          [--degrade_watermark=0.0]\n"
      "          [--mutate_trace=i:64,d:0-9,c] [--compact_watermark=0.0]\n"
      "  live    same scheduler flags plus [--clients=4]\n"
      "          [--metrics_port=9464] [--linger_ms=0]\n"
      "\n"
      "--mutate_trace applies a mutation trace before the replay: the last\n"
      "rows of the dataset become the insert stream (i:N appends N of\n"
      "them), d:A / d:A-B tombstone physical rows, c compacts. When\n"
      "--compact_watermark > 0 the server also compacts whenever the\n"
      "tombstone fraction reaches it.\n";
  return 2;
}

/// "--tenants=gold:4,free:1" -> weighted TenantSpecs.
std::vector<serve::TenantSpec> ParseTenants(const std::string& spec) {
  std::vector<serve::TenantSpec> tenants;
  if (spec.empty()) return tenants;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    serve::TenantSpec tenant;
    const size_t colon = item.find(':');
    tenant.name = item.substr(0, colon);
    if (colon != std::string::npos) {
      tenant.weight = static_cast<uint32_t>(std::stoul(item.substr(colon + 1)));
    }
    tenants.push_back(std::move(tenant));
  }
  return tenants;
}

/// "--shares=4,1" -> relative offered-traffic shares per tenant.
std::vector<double> ParseShares(const std::string& spec) {
  std::vector<double> shares;
  if (spec.empty()) return shares;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) shares.push_back(std::stod(item));
  return shares;
}

serve::ServeOptions ServeFromFlags(const FlagParser& flags) {
  serve::ServeOptions options;
  options.max_batch = static_cast<size_t>(flags.GetInt("max_batch", 16));
  options.max_wait_ns =
      static_cast<uint64_t>(flags.GetInt("max_wait_us", 1000)) * 1000;
  options.deadline_ns =
      static_cast<uint64_t>(flags.GetInt("deadline_us", 0)) * 1000;
  options.queue_capacity = static_cast<size_t>(flags.GetInt("capacity", 1024));
  options.scheduler_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.k = static_cast<int>(flags.GetInt("k", 10));
  options.exec.device_batch =
      static_cast<size_t>(flags.GetInt("device_batch", 16));
  options.tenants = ParseTenants(flags.GetString("tenants", ""));
  options.event_sample_rate = flags.GetDouble("event_sample", 0.0);
  options.event_seed = static_cast<uint64_t>(flags.GetInt("event_seed", 0));
  // Robustness plane: seeded chaos schedule + ladder deadline + degraded
  // mode (all off by default; chaos-off runs are bit-identical to before).
  options.chaos.device_deaths =
      static_cast<int>(flags.GetInt("chaos_deaths", 0));
  options.chaos.stalls = static_cast<int>(flags.GetInt("chaos_stalls", 0));
  options.chaos.link_faults =
      static_cast<int>(flags.GetInt("chaos_link_faults", 0));
  options.chaos.horizon_ns =
      static_cast<uint64_t>(flags.GetInt("chaos_horizon_us", 0)) * 1000;
  options.chaos.seed =
      static_cast<uint64_t>(flags.GetInt("chaos_seed", 0xC7A05));
  options.batch_deadline_ns =
      static_cast<uint64_t>(flags.GetInt("batch_deadline_us", 0)) * 1000;
  options.degrade_watermark = flags.GetDouble("degrade_watermark", 0.0);
  options.compact_watermark = flags.GetDouble("compact_watermark", 0.0);
  return options;
}

void PrintServeStats(const serve::ServeStats& stats) {
  TablePrinter table({"metric", "value"});
  table.AddRow({"submitted", std::to_string(stats.submitted)});
  table.AddRow({"served", std::to_string(stats.served)});
  table.AddRow({"rejected (backpressure)", std::to_string(stats.rejected)});
  table.AddRow({"deadline misses", std::to_string(stats.deadline_misses)});
  if (stats.shed_queries > 0 || stats.degraded_batches > 0) {
    table.AddRow({"shed (degraded mode)", std::to_string(stats.shed_queries)});
    table.AddRow(
        {"degraded dispatches", std::to_string(stats.degraded_batches)});
  }
  table.AddRow({"dispatches", std::to_string(stats.batches)});
  table.AddRow({"mean batch occupancy", Fmt(stats.mean_batch_occupancy)});
  table.AddRow({"max queue depth", std::to_string(stats.max_queue_depth)});
  table.AddRow({"makespan_ms", Fmt(stats.makespan_ns / 1e6, 4)});
  if (stats.makespan_ns > 0) {
    table.AddRow({"throughput (queries/s)",
                  Fmt(stats.served * 1e9 / stats.makespan_ns, 0)});
  }
  table.AddRow({"device pipelined_ms", Fmt(stats.pipelined_ns / 1e6, 4)});
  table.AddRow({"PIM model_ms", Fmt(stats.exec.pim_ns / 1e6, 4)});
  table.AddRow({"wall_ms (measured)", Fmt(stats.exec.wall_ms)});
  table.AddRow({"wait histogram", stats.wait_hist.Summary()});
  table.AddRow({"latency histogram", stats.latency_hist.Summary()});
  table.Print();
  if (stats.tenants.size() > 1) {
    TablePrinter tenants({"tenant", "submitted", "served", "rejected",
                          "misses", "latency"});
    for (const serve::TenantServeStats& t : stats.tenants) {
      tenants.AddRow({t.name, std::to_string(t.submitted),
                      std::to_string(t.served), std::to_string(t.rejected),
                      std::to_string(t.deadline_misses),
                      t.latency.Summary()});
    }
    tenants.Print();
  }
}

void MaybeDumpMetrics(const FlagParser& flags) {
  const std::string path = flags.GetString("metrics_out", "");
  obs::Obs* o = obs::Obs::Get();
  if (o == nullptr) return;
  if (!path.empty()) {
    std::ofstream out(path);
    PIMINE_CHECK(out.good()) << "cannot open --metrics_out " << path;
    const bool as_json = path.ends_with(".json");
    out << (as_json ? o->metrics().ToJson() : o->metrics().ToPrometheus());
    std::cout << "metrics: " << path << "\n";
  }
  obs::Obs::Disable();
}

int RunReplay(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown(
      {"dataset", "requests", "qps", "seed", "max_batch", "max_wait_us",
       "deadline_us", "capacity", "threads", "k", "n", "queries",
       "device_batch", "shards", "replicas", "distance", "tenants", "shares",
       "metrics_out", "timeseries_out", "events_out", "event_sample",
       "event_seed", "chaos_deaths", "chaos_stalls", "chaos_link_faults",
       "chaos_horizon_us", "chaos_seed", "batch_deadline_us",
       "degrade_watermark", "mutate_trace", "compact_watermark"}));
  const auto workload =
      LoadWorkload(flags.GetString("dataset", "MSD"), flags.GetInt("n", 0),
                   flags.GetInt("queries", 64));
  EngineOptions engine = ScaledEngineOptions(workload);
  engine.shard.shards = static_cast<int>(flags.GetInt("shards", 1));
  engine.shard.replicas = static_cast<int>(flags.GetInt("replicas", 1));
  const std::string distance_name = flags.GetString("distance", "ED");
  const Distance distance = distance_name == "CS"    ? Distance::kCosine
                            : distance_name == "PCC" ? Distance::kPearson
                                                     : Distance::kEuclidean;
  const serve::ServeOptions serve_options = ServeFromFlags(flags);

  // Mutable-dataset mode: split the workload into a base corpus plus an
  // insert stream (its LAST `total inserts` rows), replay the mutation
  // trace against the served corpus, then serve what remains.
  std::vector<MutationOp> mutation_ops;
  std::unique_ptr<MutableDataset> dataset;
  FloatMatrix insert_stream;
  const std::string mutate_trace = flags.GetString("mutate_trace", "");
  if (!mutate_trace.empty()) {
    auto parsed = ParseMutationTrace(mutate_trace);
    PIMINE_CHECK(parsed.ok()) << parsed.status().ToString();
    mutation_ops = std::move(*parsed);
    size_t inserts = 0;
    for (const MutationOp& op : mutation_ops) {
      if (op.kind == MutationOp::Kind::kInsert) inserts += op.count;
    }
    PIMINE_CHECK(inserts < workload.data.rows())
        << "--mutate_trace inserts " << inserts
        << " rows but the dataset only has " << workload.data.rows();
    const size_t base_rows = workload.data.rows() - inserts;
    const size_t d = workload.data.cols();
    FloatMatrix base(base_rows, d);
    insert_stream = FloatMatrix(inserts, d);
    for (size_t i = 0; i < workload.data.rows(); ++i) {
      const auto src = workload.data.row(i);
      auto dst = i < base_rows ? base.mutable_row(i)
                               : insert_stream.mutable_row(i - base_rows);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    dataset = std::make_unique<MutableDataset>(std::move(base));
  }

  serve::WorkloadSpec spec;
  spec.num_requests = static_cast<size_t>(flags.GetInt("requests", 512));
  spec.offered_qps = flags.GetDouble("qps", 2e6);
  spec.tenant_share = ParseShares(flags.GetString("shares", ""));
  if (spec.tenant_share.empty()) {
    spec.tenant_share.assign(serve_options.num_tenants(), 1.0);
  }
  spec.num_query_rows = static_cast<uint32_t>(workload.queries.rows());
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  if (!flags.GetString("metrics_out", "").empty()) obs::Obs::Enable();

  auto trace = serve::GeneratePoissonTrace(spec);
  PIMINE_CHECK(trace.ok()) << trace.status().ToString();
  const FloatMatrix& served_data =
      dataset != nullptr ? dataset->corpus() : workload.data;
  auto server =
      serve::PimServer::Build(served_data, distance, engine, serve_options);
  PIMINE_CHECK(server.ok()) << server.status().ToString();
  if (dataset != nullptr) {
    PIMINE_CHECK_OK((*server)->AttachMutable(dataset.get()));
    // One op at a time so the compaction watermark is evaluated between
    // top-level mutations (never from inside a listener callback).
    size_t stream_pos = 0;
    for (const MutationOp& op : mutation_ops) {
      PIMINE_CHECK_OK(ApplyMutationTrace(dataset.get(), {&op, 1},
                                         insert_stream, &stream_pos));
      PIMINE_CHECK_OK((*server)->MaybeCompact());
    }
    std::cout << "mutations: " << mutate_trace << " -> "
              << dataset->live_rows() << " live rows ("
              << dataset->tombstoned_rows() << " tombstoned), "
              << (*server)->watermark_compactions()
              << " watermark compactions\n";
  }
  auto output = (*server)->Replay(*trace, workload.queries);
  PIMINE_CHECK(output.ok()) << output.status().ToString();

  std::cout << "replay on " << workload.spec.name << " ("
            << workload.data.rows() << " x " << workload.data.cols()
            << "), " << spec.num_requests << " requests at "
            << Fmt(spec.offered_qps, 0) << " q/s offered, max_batch="
            << serve_options.max_batch << ", threads="
            << serve_options.scheduler_threads << "\n";
  PrintServeStats(output->stats);
  const std::string ts_path = flags.GetString("timeseries_out", "");
  if (!ts_path.empty()) {
    std::ofstream out(ts_path);
    PIMINE_CHECK(out.good()) << "cannot open --timeseries_out " << ts_path;
    out << output->timeseries_json;
    std::cout << "timeseries: " << ts_path << "\n";
  }
  const std::string ev_path = flags.GetString("events_out", "");
  if (!ev_path.empty()) {
    std::ofstream out(ev_path);
    PIMINE_CHECK(out.good()) << "cannot open --events_out " << ev_path;
    out << output->events_jsonl;
    std::cout << "events: " << ev_path << "\n";
  }
  MaybeDumpMetrics(flags);
  return 0;
}

int RunLive(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown(
      {"dataset", "requests", "clients", "max_batch", "max_wait_us",
       "deadline_us", "capacity", "threads", "k", "n", "queries",
       "device_batch", "shards", "replicas", "distance", "tenants",
       "metrics_port", "linger_ms", "event_sample", "event_seed",
       "chaos_deaths", "chaos_stalls", "chaos_link_faults",
       "chaos_horizon_us", "chaos_seed", "batch_deadline_us",
       "degrade_watermark", "compact_watermark"}));
  const auto workload =
      LoadWorkload(flags.GetString("dataset", "MSD"), flags.GetInt("n", 0),
                   flags.GetInt("queries", 64));
  EngineOptions engine = ScaledEngineOptions(workload);
  engine.shard.shards = static_cast<int>(flags.GetInt("shards", 1));
  engine.shard.replicas = static_cast<int>(flags.GetInt("replicas", 1));
  const serve::ServeOptions serve_options = ServeFromFlags(flags);
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 256));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));

  auto server = serve::PimServer::Build(workload.data, Distance::kEuclidean,
                                        engine, serve_options);
  PIMINE_CHECK(server.ok()) << server.status().ToString();
  PIMINE_CHECK_OK((*server)->Start());

  // Optional live telemetry endpoint: handlers snapshot server state, so
  // mounting it cannot change what is served (DESIGN.md section 11).
  std::unique_ptr<obs::ExpositionServer> exposition;
  if (flags.GetInt("metrics_port", -1) >= 0) {
    serve::PimServer* s = server->get();
    std::vector<obs::HttpRoute> routes;
    routes.push_back({"/metrics", "text/plain; version=0.0.4; charset=utf-8",
                      [s] { return s->MetricsText(); }});
    routes.push_back({"/healthz", "text/plain; charset=utf-8",
                      [s] { return s->HealthzBody(); }});
    routes.push_back({"/timeseries.json", "application/json",
                      [s] { return s->TimeSeriesJson(); }});
    routes.push_back({"/events.jsonl", "application/jsonl",
                      [s] { return s->EventsJsonl(); }});
    auto started = obs::ExpositionServer::Start(
        static_cast<int>(flags.GetInt("metrics_port", -1)),
        std::move(routes));
    PIMINE_CHECK(started.ok()) << started.status().ToString();
    exposition = std::move(*started);
    std::cout << "telemetry: http://127.0.0.1:" << exposition->port()
              << "/metrics\n"
              << std::flush;
  }

  std::vector<std::thread> client_threads;
  std::vector<uint64_t> ok_counts(clients, 0);
  std::vector<uint64_t> rejected_counts(clients, 0);
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      const uint32_t tenant =
          static_cast<uint32_t>(c % serve_options.num_tenants());
      for (size_t i = c; i < requests; i += clients) {
        const auto row = workload.queries.row(i % workload.queries.rows());
        auto result = (*server)->Submit(tenant, row);
        if (result.ok()) {
          ++ok_counts[c];
        } else {
          ++rejected_counts[c];
        }
      }
    });
  }
  for (std::thread& t : client_threads) t.join();
  // Keep the server (and the telemetry endpoint) mounted so an external
  // scraper can read the complete end-of-run state before shutdown.
  const int64_t linger_ms = flags.GetInt("linger_ms", 0);
  if (linger_ms > 0) {
    std::cout << "lingering " << linger_ms << " ms\n" << std::flush;
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  (*server)->Stop();
  if (exposition != nullptr) exposition->Stop();

  const serve::ServeStats stats = (*server)->LiveStats();
  std::cout << "live on " << workload.spec.name << ": " << clients
            << " clients x " << requests << " requests, threads="
            << serve_options.scheduler_threads << "\n";
  PrintServeStats(stats);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return Usage();
  }
  if (command == "replay") return RunReplay(*flags_or);
  if (command == "live") return RunLive(*flags_or);
  std::cerr << "unknown command '" << command << "'\n";
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace pimine

int main(int argc, char** argv) { return pimine::cli::Main(argc, argv); }
