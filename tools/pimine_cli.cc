// pimine command-line driver: run any of the library's mining algorithms
// against the paper's dataset profiles (or your own sizes) from the shell.
//
//   pimine_cli knn     --dataset=MSD --algorithm=fnn-pim --k=10 [--n=20000]
//   pimine_cli kmeans  --dataset=NUS-WIDE --algorithm=yinyang --k=64 --pim
//   pimine_cli outlier --dataset=MSD --k=5 --top=10 [--pim]
//   pimine_cli motif   --length=4000 --window=64 [--pim]
//   pimine_cli plan    --dataset=MSD --crossbars=512
//   pimine_cli config
//
// Every run prints measured wall time, modeled time (the NVSim+Quartz-style
// composition), and the operation counts behind it.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/memory_planner.h"
#include "obs/obs.h"
#include "core/partitioned_engine.h"
#include "kmeans/drake.h"
#include "kmeans/elkan.h"
#include "kmeans/hamerly.h"
#include "kmeans/lloyd.h"
#include "kmeans/yinyang.h"
#include "knn/fnn_knn.h"
#include "knn/fnn_pim_knn.h"
#include "knn/motif.h"
#include "knn/ost_knn.h"
#include "knn/ost_pim_knn.h"
#include "knn/outlier.h"
#include "knn/sm_knn.h"
#include "knn/sm_pim_knn.h"
#include "knn/standard_knn.h"
#include "knn/standard_pim_knn.h"
#include "profiling/modeled_time.h"
#include "sim/platform.h"
#include "util/flags.h"
#include "util/random.h"

namespace pimine {
namespace cli {
namespace {

using bench::Fmt;
using bench::LoadWorkload;
using bench::ScaledEngineOptions;
using bench::TablePrinter;

int Usage() {
  std::cerr <<
      "usage: pimine_cli <command> [--flags]\n"
      "commands:\n"
      "  knn      --dataset=<name> --algorithm=<standard|ost|sm|fnn>[-pim]\n"
      "           [--k=10] [--n=0] [--queries=20] [--distance=ED|CS|PCC]\n"
      "           [--alpha=1e6] [--crossbars=0 (0=scaled)] [--optimize]\n"
      "           [--threads=1] [--block=512] [--device_batch=1]\n"
      "           [--shards=1] [--placement=contiguous|hash|cluster]\n"
      "           [--fault_rate=0] [--fault_seed=...] \n"
      "           [--fault_recovery=exact|slack|fail|none]\n"
      "  kmeans   --dataset=<name> --algorithm=<standard|elkan|drake|\n"
      "           yinyang|hamerly> [--k=64] [--n=0] [--iterations=5]\n"
      "           [--pim] [--seed=42] [--threads=1] [--block=512]\n"
      "           [--device_batch=1] [--shards=1]\n"
      "           [--placement=contiguous|hash|cluster]\n"
      "           [--fault_rate=0] [--fault_seed=...]\n"
      "           [--fault_recovery=exact|slack|fail|none]\n"
      "  outlier  --dataset=<name> [--k=5] [--top=10] [--n=4000] [--pim]\n"
      "  motif    [--length=4000] [--window=64] [--pim] [--seed=1]\n"
      "  plan     --dataset=<name> [--n=0] [--crossbars=131072]\n"
      "           [--copies=2]\n"
      "  config   (prints the Table 1/5/6 configuration)\n"
      "observability (knn / kmeans):\n"
      "  --trace_out=t.json    chrome://tracing JSON (modeled-time spans)\n"
      "  --metrics_out=m.prom  metrics dump (.json => JSON, else Prometheus)\n"
      "  --hist=latency        print the latency histogram summary\n"
      "  --trace_wall --trace_device --trace_sched   opt-in physical events\n";
  return 2;
}

/// Observability flags shared by the knn and kmeans commands. Tracing is
/// enabled before Prepare (so offline device programming is captured) and
/// exported after the run.
struct ObsCliConfig {
  std::string trace_out;
  std::string metrics_out;
  std::string hist;
  bool enabled() const {
    return !trace_out.empty() || !metrics_out.empty() || !hist.empty();
  }
};

ObsCliConfig SetupObservability(const FlagParser& flags) {
  ObsCliConfig cfg;
  cfg.trace_out = flags.GetString("trace_out", "");
  cfg.metrics_out = flags.GetString("metrics_out", "");
  cfg.hist = flags.GetString("hist", "");
  if (!cfg.hist.empty()) {
    PIMINE_CHECK(cfg.hist == "latency")
        << "unknown --hist '" << cfg.hist << "' (want latency)";
  }
  if (!cfg.enabled()) return cfg;
  obs::ObsOptions options;
  options.trace.wall_clock = flags.GetBool("trace_wall", false);
  options.trace.device_events = flags.GetBool("trace_device", false);
  options.trace.sched_events = flags.GetBool("trace_sched", false);
  obs::Obs::Enable(options);
  return cfg;
}

void FinishObservability(const ObsCliConfig& cfg, const RunStats& stats) {
  obs::Obs* o = obs::Obs::Get();
  if (o == nullptr) return;
  if (!cfg.trace_out.empty()) {
    std::ofstream out(cfg.trace_out);
    PIMINE_CHECK(out.good()) << "cannot open --trace_out " << cfg.trace_out;
    out << o->trace().ToChromeJson();
    std::cout << "trace: " << cfg.trace_out << " (" << o->trace().NumEvents()
              << " events; load via chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!cfg.metrics_out.empty()) {
    std::ofstream out(cfg.metrics_out);
    PIMINE_CHECK(out.good()) << "cannot open --metrics_out "
                             << cfg.metrics_out;
    const bool as_json = cfg.metrics_out.ends_with(".json");
    out << (as_json ? o->metrics().ToJson() : o->metrics().ToPrometheus());
    std::cout << "metrics: " << cfg.metrics_out << " ("
              << (as_json ? "JSON" : "Prometheus") << ")\n";
  }
  if (cfg.hist == "latency") {
    std::cout << "latency histogram (modeled ns): "
              << stats.latency_hist.Summary() << "\n";
  }
  obs::Obs::Disable();
}

EngineOptions EngineFromFlags(const FlagParser& flags,
                              const bench::BenchWorkload& workload) {
  const int64_t crossbars = flags.GetInt("crossbars", 0);
  EngineOptions options =
      crossbars == 0 ? ScaledEngineOptions(workload) : EngineOptions();
  if (crossbars > 0) options.pim_config.num_crossbars = crossbars;
  options.alpha = flags.GetDouble("alpha", options.alpha);
  // --fault_rate drives both stuck-cell and transient rates; recovery keeps
  // results exact unless --fault_recovery overrides the verify mode.
  const double fault_rate = flags.GetDouble("fault_rate", 0.0);
  options.fault_config.cell_rate = fault_rate;
  options.fault_config.transient_rate = fault_rate;
  options.fault_config.seed = static_cast<uint64_t>(flags.GetInt(
      "fault_seed", static_cast<int64_t>(options.fault_config.seed)));
  const std::string recovery = flags.GetString("fault_recovery", "exact");
  if (recovery == "exact") {
    options.recovery.verify_mode = VerifyMode::kHostExact;
  } else if (recovery == "slack") {
    options.recovery.verify_mode = VerifyMode::kBoundSlack;
  } else if (recovery == "fail") {
    options.recovery.verify_mode = VerifyMode::kFailOp;
  } else if (recovery == "none") {
    options.recovery.verify_mode = VerifyMode::kNone;
  } else {
    PIMINE_CHECK(false) << "unknown --fault_recovery '" << recovery
                        << "' (want exact|slack|fail|none)";
  }
  // --shards / --placement pick the fleet geometry (DESIGN.md section 9).
  // Results are bit-identical for every shard count; only the fleet
  // interconnect rows below vary.
  options.shard.shards = static_cast<int>(flags.GetInt("shards", 1));
  const Result<ShardPlacement> placement =
      ParseShardPlacement(flags.GetString("placement", "contiguous"));
  PIMINE_CHECK(placement.ok()) << placement.status().ToString();
  options.shard.placement = placement.value();
  return options;
}

/// --threads / --block / --device_batch map onto ExecPolicy; the defaults
/// reproduce the paper's serial per-query measurement setup.
ExecPolicy ExecFromFlags(const FlagParser& flags) {
  ExecPolicy policy;
  policy.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  policy.block_size = static_cast<size_t>(
      flags.GetInt("block", static_cast<int64_t>(policy.block_size)));
  policy.device_batch =
      static_cast<size_t>(flags.GetInt("device_batch", 1));
  return policy;
}

void PrintRunStats(const RunStats& stats, const HostCostModel& model) {
  const ModeledTime modeled = ComposeModeledTime(stats, model);
  TablePrinter table({"metric", "value"});
  table.AddRow({"wall_ms (measured)", Fmt(stats.wall_ms)});
  table.AddRow({"model_ms (host+PIM)", Fmt(modeled.total_ms())});
  table.AddRow({"  host model_ms", Fmt(modeled.host.total_ns() / 1e6)});
  table.AddRow({"  PIM model_ms", Fmt(stats.pim_ns / 1e6, 4)});
  table.AddRow({"exact distance computations",
                std::to_string(stats.exact_count)});
  table.AddRow({"bound evaluations", std::to_string(stats.bound_count)});
  table.AddRow({"bytes from memory",
                std::to_string(stats.traffic.bytes_from_memory)});
  table.AddRow({"PIM results loaded",
                std::to_string(stats.traffic.pim_results_loaded)});
  if (stats.fault.Any()) {
    table.AddRow({"faults injected", std::to_string(stats.fault.injected)});
    table.AddRow({"faults detected", std::to_string(stats.fault.detected)});
    table.AddRow({"faults escaped", std::to_string(stats.fault.escaped)});
    table.AddRow({"fault retries", std::to_string(stats.fault.retries)});
    table.AddRow({"rows remapped",
                  std::to_string(stats.fault.remapped_rows)});
    table.AddRow({"host escalations",
                  std::to_string(stats.fault.escalated_to_host)});
    table.AddRow({"recovery model_ms", Fmt(stats.fault.recovery_ns / 1e6, 4)});
  }
  if (stats.fleet.Any()) {
    table.AddRow({"fleet shards",
                  std::to_string(stats.fleet.shards) + " (" +
                      std::string(ShardPlacementName(stats.fleet.placement)) +
                      ")"});
    table.AddRow({"scatter messages",
                  std::to_string(stats.fleet.scatter_messages)});
    table.AddRow({"gather messages",
                  std::to_string(stats.fleet.gather_messages)});
    table.AddRow({"reduce messages",
                  std::to_string(stats.fleet.reduce_messages)});
    table.AddRow({"fleet fail-overs", std::to_string(stats.fleet.failovers)});
    table.AddRow({"interconnect model_ms",
                  Fmt(stats.fleet.InterconnectNs() / 1e6, 4)});
  }
  table.Print();
}

int RunKnn(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown({"dataset", "algorithm", "k", "n",
                                    "queries", "distance", "alpha",
                                    "crossbars", "optimize", "threads",
                                    "block", "device_batch", "shards",
                                    "placement", "fault_rate",
                                    "fault_seed", "fault_recovery",
                                    "trace_out", "metrics_out", "hist",
                                    "trace_wall", "trace_device",
                                    "trace_sched"}));
  const auto workload =
      LoadWorkload(flags.GetString("dataset", "MSD"), flags.GetInt("n", 0),
                   flags.GetInt("queries", 20));
  const EngineOptions options = EngineFromFlags(flags, workload);
  const std::string distance_name = flags.GetString("distance", "ED");
  const Distance distance = distance_name == "CS"    ? Distance::kCosine
                            : distance_name == "PCC" ? Distance::kPearson
                                                     : Distance::kEuclidean;

  const std::string name = flags.GetString("algorithm", "standard");
  std::unique_ptr<KnnAlgorithm> algorithm;
  if (name == "standard") {
    algorithm = std::make_unique<StandardKnn>(distance);
  } else if (name == "standard-pim") {
    algorithm = std::make_unique<StandardPimKnn>(distance, options);
  } else if (name == "ost") {
    algorithm = std::make_unique<OstKnn>();
  } else if (name == "ost-pim") {
    algorithm = std::make_unique<OstPimKnn>(options);
  } else if (name == "sm") {
    algorithm = std::make_unique<SmKnn>();
  } else if (name == "sm-pim") {
    algorithm = std::make_unique<SmPimKnn>(options);
  } else if (name == "fnn") {
    algorithm = std::make_unique<FnnKnn>();
  } else if (name == "fnn-pim") {
    algorithm = std::make_unique<FnnPimKnn>(options,
                                            flags.GetBool("optimize", false));
  } else {
    std::cerr << "unknown kNN algorithm '" << name << "'\n";
    return Usage();
  }

  const ObsCliConfig obs_cfg = SetupObservability(flags);
  algorithm->set_exec_policy(ExecFromFlags(flags));
  PIMINE_CHECK_OK(algorithm->Prepare(workload.data));
  auto result =
      algorithm->Search(workload.queries,
                        static_cast<int>(flags.GetInt("k", 10)));
  PIMINE_CHECK(result.ok()) << result.status().ToString();
  std::cout << algorithm->name() << " on " << workload.spec.name << " ("
            << workload.data.rows() << " x " << workload.data.cols()
            << "), k=" << flags.GetInt("k", 10) << ", "
            << workload.queries.rows() << " queries\n";
  PrintRunStats(result->stats, HostCostModel());
  FinishObservability(obs_cfg, result->stats);
  return 0;
}

int RunKmeans(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown({"dataset", "algorithm", "k", "n",
                                    "iterations", "pim", "seed", "alpha",
                                    "crossbars", "threads", "block",
                                    "device_batch", "shards", "placement",
                                    "fault_rate",
                                    "fault_seed", "fault_recovery",
                                    "trace_out", "metrics_out", "hist",
                                    "trace_wall", "trace_device",
                                    "trace_sched"}));
  const auto workload =
      LoadWorkload(flags.GetString("dataset", "NUS-WIDE"),
                   flags.GetInt("n", 0), 1);
  KmeansOptions options;
  options.k = static_cast<int>(flags.GetInt("k", 64));
  options.max_iterations = static_cast<int>(flags.GetInt("iterations", 5));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.use_pim = flags.GetBool("pim", false);
  options.engine_options = EngineFromFlags(flags, workload);
  options.exec = ExecFromFlags(flags);

  const std::string name = flags.GetString("algorithm", "standard");
  std::unique_ptr<KmeansAlgorithm> algorithm;
  if (name == "standard") {
    algorithm = std::make_unique<LloydKmeans>();
  } else if (name == "elkan") {
    algorithm = std::make_unique<ElkanKmeans>();
  } else if (name == "drake") {
    algorithm = std::make_unique<DrakeKmeans>();
  } else if (name == "yinyang") {
    algorithm = std::make_unique<YinyangKmeans>();
  } else if (name == "hamerly") {
    algorithm = std::make_unique<HamerlyKmeans>();
  } else {
    std::cerr << "unknown k-means algorithm '" << name << "'\n";
    return Usage();
  }

  const ObsCliConfig obs_cfg = SetupObservability(flags);
  auto result = algorithm->Run(workload.data, options);
  PIMINE_CHECK(result.ok()) << result.status().ToString();
  std::cout << algorithm->name() << (options.use_pim ? "-PIM" : "") << " on "
            << workload.spec.name << ", k=" << options.k << ": "
            << result->iterations << " iterations, inertia "
            << result->inertia << "\n";
  PrintRunStats(result->stats, HostCostModel());
  FinishObservability(obs_cfg, result->stats);
  return 0;
}

int RunOutlier(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown(
      {"dataset", "k", "top", "n", "pim", "alpha", "crossbars"}));
  const auto workload = LoadWorkload(flags.GetString("dataset", "MSD"),
                                     flags.GetInt("n", 4000), 1);
  OutlierOptions options;
  options.k = static_cast<int>(flags.GetInt("k", 5));
  options.num_outliers = static_cast<int>(flags.GetInt("top", 10));

  Result<OutlierResult> result = [&]() -> Result<OutlierResult> {
    if (flags.GetBool("pim", false)) {
      OrcaPimOutlierDetector detector(EngineFromFlags(flags, workload));
      return detector.Detect(workload.data, options);
    }
    OrcaOutlierDetector detector;
    return detector.Detect(workload.data, options);
  }();
  PIMINE_CHECK(result.ok()) << result.status().ToString();

  std::cout << "top-" << options.num_outliers << " outliers by "
            << options.k << "-NN distance on " << workload.spec.name << ":\n";
  for (const Neighbor& outlier : result->outliers) {
    std::printf("  object %-7d score %.6f\n", outlier.id, outlier.distance);
  }
  PrintRunStats(result->stats, HostCostModel());
  return 0;
}

int RunMotif(const FlagParser& flags) {
  PIMINE_CHECK_OK(
      flags.CheckKnown({"length", "window", "pim", "seed", "alpha"}));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  std::vector<float> series(
      static_cast<size_t>(flags.GetInt("length", 4000)));
  double level = 0.0;
  for (float& v : series) {
    level += rng.NextGaussian(0.0, 1.0);
    v = static_cast<float>(level);
  }
  auto windows = ExtractWindows(series, flags.GetInt("window", 64));
  PIMINE_CHECK(windows.ok()) << windows.status().ToString();

  MotifOptions options;
  options.window = flags.GetInt("window", 64);
  Result<MotifResult> result = [&]() -> Result<MotifResult> {
    if (flags.GetBool("pim", false)) {
      EngineOptions engine_options;
      engine_options.alpha = flags.GetDouble("alpha", 1e6);
      PimMotifDiscovery detector(engine_options);
      return detector.Find(*windows, options);
    }
    MotifDiscovery detector;
    return detector.Find(*windows, options);
  }();
  PIMINE_CHECK(result.ok()) << result.status().ToString();
  std::cout << "motif: windows " << result->first << " and "
            << result->second << " (squared ED " << result->distance
            << ") among " << windows->rows() << " windows\n";
  PrintRunStats(result->stats, HostCostModel());
  return 0;
}

int RunPlan(const FlagParser& flags) {
  PIMINE_CHECK_OK(flags.CheckKnown({"dataset", "n", "crossbars", "copies"}));
  const auto workload = LoadWorkload(flags.GetString("dataset", "MSD"),
                                     flags.GetInt("n", 0), 1);
  PimConfig config;
  config.num_crossbars = flags.GetInt("crossbars", config.num_crossbars);
  auto plan = PlanPimLayout(static_cast<int64_t>(workload.data.rows()),
                            static_cast<int64_t>(workload.data.cols()), 32,
                            static_cast<int>(flags.GetInt("copies", 2)),
                            config);
  if (!plan.ok()) {
    std::cout << "no feasible layout: " << plan.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Theorem 4 layout for " << workload.spec.name << " ("
            << workload.data.rows() << " x " << workload.data.cols()
            << ") on " << config.num_crossbars
            << " crossbars: " << plan->ToString() << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags_or = FlagParser::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) {
    std::cerr << flags_or.status().ToString() << "\n";
    return Usage();
  }
  const FlagParser& flags = *flags_or;

  if (command == "knn") return RunKnn(flags);
  if (command == "kmeans") return RunKmeans(flags);
  if (command == "outlier") return RunOutlier(flags);
  if (command == "motif") return RunMotif(flags);
  if (command == "plan") return RunPlan(flags);
  if (command == "config") {
    std::cout << FormatNvmTable() << "\n"
              << FormatPlatformConfig(DefaultPlatform());
    return 0;
  }
  std::cerr << "unknown command '" << command << "'\n";
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace pimine

int main(int argc, char** argv) { return pimine::cli::Main(argc, argv); }
