#!/usr/bin/env python3
"""Validate and diff the JSON documents emitted by the bench sweeps.

The sweep modes of bench_micro_pim (--batch_sweep, --fault_sweep,
--shard_sweep) all emit one JSON object with scalar header fields and a
"sweep" list of flat entries. This tool works on that shape:

  bench_diff.py --validate BENCH_shard.json
      Checks the document parses and, for known schemas, that every sweep
      entry carries the schema's required fields. Exit 0 on success.

  bench_diff.py old.json new.json
      Matches sweep entries between the two documents by their key fields
      (shards/q/rate — whatever identifies a configuration) and prints the
      absolute and relative change of every shared numeric metric. Exits 1
      when the headers disagree (different workload), 0 otherwise: the diff
      is informational, thresholds are the caller's business.

stdlib only; no third-party imports.
"""

import argparse
import json
import sys

# Fields that identify one sweep configuration (matched between files) and
# fields every entry must carry, per schema. Documents without a recognised
# schema fall back to positional matching and parse-only validation.
SCHEMAS = {
    "pimine.bench.shard.v1": {
        "keys": ["shards", "q"],
        "required": [
            "shards", "q", "crossbars_per_shard", "wall_ms", "queries_per_s",
            "modeled_pipelined_ns", "interconnect_ns",
            "modeled_queries_per_s", "interconnect_fraction",
            "identical_to_single_device",
        ],
        "header": ["n", "d", "total_queries"],
    },
    "pimine.bench.serve.v1": {
        "keys": ["load_factor"],
        "required": [
            "load_factor", "offered_qps", "served", "rejected", "dispatches",
            "mean_batch_occupancy", "makespan_ms", "modeled_queries_per_s",
            "pipelined_ns", "wait_p50_ns", "latency_p50_ns", "latency_p99_ns",
            "wall_ms",
        ],
        "header": ["n", "d", "requests", "max_batch", "device_batch"],
    },
}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("sweep"), list):
        sys.exit(f"error: {path} is not a bench sweep document "
                 "(object with a 'sweep' list)")
    return doc


def schema_of(doc):
    return SCHEMAS.get(doc.get("schema") or doc.get("bench"))


def validate(path):
    doc = load(path)
    schema = schema_of(doc)
    if schema is None:
        print(f"{path}: parses; unknown schema "
              f"'{doc.get('schema') or doc.get('bench')}' (parse-only check)")
        return
    missing_header = [f for f in schema["header"] if f not in doc]
    if missing_header:
        sys.exit(f"error: {path}: missing header fields {missing_header}")
    for i, entry in enumerate(doc["sweep"]):
        missing = [f for f in schema["required"] if f not in entry]
        if missing:
            sys.exit(f"error: {path}: sweep[{i}] missing fields {missing}")
    if not doc["sweep"]:
        sys.exit(f"error: {path}: empty sweep")
    print(f"{path}: valid ({doc.get('schema') or doc.get('bench')}, "
          f"{len(doc['sweep'])} entries)")


def entry_key(entry, keys):
    return tuple(entry.get(k) for k in keys)


def diff(old_path, new_path):
    old, new = load(old_path), load(new_path)
    schema = schema_of(old)
    keys = schema["keys"] if schema else []
    header = schema["header"] if schema else []

    mismatched = [f for f in header if old.get(f) != new.get(f)]
    if mismatched:
        for f in mismatched:
            print(f"header mismatch: {f}: {old.get(f)} -> {new.get(f)}")
        sys.exit(1)

    if keys:
        new_by_key = {entry_key(e, keys): e for e in new["sweep"]}
        pairs = [(e, new_by_key.get(entry_key(e, keys))) for e in old["sweep"]]
    else:
        pairs = list(zip(old["sweep"], new["sweep"]))

    for old_entry, new_entry in pairs:
        label = (", ".join(f"{k}={old_entry.get(k)}" for k in keys)
                 if keys else "entry")
        if new_entry is None:
            print(f"[{label}] only in {old_path}")
            continue
        print(f"[{label}]")
        for field, old_value in old_entry.items():
            if field in keys or not isinstance(old_value, (int, float)) \
                    or isinstance(old_value, bool):
                continue
            new_value = new_entry.get(field)
            if not isinstance(new_value, (int, float)):
                continue
            delta = new_value - old_value
            rel = f" ({delta / old_value:+.1%})" if old_value else ""
            marker = "  " if delta == 0 else "* "
            print(f"  {marker}{field}: {old_value} -> {new_value}{rel}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", metavar="FILE",
                        help="schema-check one bench JSON and exit")
    parser.add_argument("files", nargs="*", metavar="OLD NEW",
                        help="two bench JSONs to diff")
    args = parser.parse_args()
    if args.validate:
        if args.files:
            parser.error("--validate takes exactly one file")
        validate(args.validate)
    elif len(args.files) == 2:
        diff(args.files[0], args.files[1])
    else:
        parser.error("pass --validate FILE or exactly two files to diff")


if __name__ == "__main__":
    main()
