#!/usr/bin/env python3
"""Validate and diff the JSON documents emitted by the bench sweeps.

The sweep modes of bench_micro_pim (--batch_sweep, --fault_sweep,
--shard_sweep) all emit one JSON object with scalar header fields and a
"sweep" list of flat entries. This tool works on that shape:

  bench_diff.py --validate BENCH_shard.json
      Checks the document parses and, for known schemas, that every sweep
      entry carries the schema's required fields. Exit 0 on success.

--validate also accepts the telemetry documents written by
`pimine_serve replay --timeseries_out` (schema pimine.obs.timeseries.v1):
those are header + series + slo rather than header + sweep, and are
checked structurally (point arity per series type, retention header,
slo block) instead of per-entry.

  bench_diff.py old.json new.json
      Matches sweep entries between the two documents by their key fields
      (shards/q/rate — whatever identifies a configuration) and prints the
      absolute and relative change of every shared numeric metric. Exits 1
      when the headers disagree (different workload), 0 otherwise: the diff
      is informational, thresholds are the caller's business.

stdlib only; no third-party imports.
"""

import argparse
import json
import sys

# Fields that identify one sweep configuration (matched between files) and
# fields every entry must carry, per schema. Documents without a recognised
# schema fall back to positional matching and parse-only validation.
SCHEMAS = {
    "pimine.bench.shard.v1": {
        "keys": ["shards", "q"],
        "required": [
            "shards", "q", "crossbars_per_shard", "wall_ms", "queries_per_s",
            "modeled_pipelined_ns", "interconnect_ns",
            "modeled_queries_per_s", "interconnect_fraction",
            "identical_to_single_device",
        ],
        "header": ["n", "d", "total_queries"],
    },
    "pimine.bench.serve.v1": {
        "keys": ["load_factor"],
        "required": [
            "load_factor", "offered_qps", "served", "rejected", "dispatches",
            "mean_batch_occupancy", "makespan_ms", "modeled_queries_per_s",
            "pipelined_ns", "wait_p50_ns", "latency_p50_ns", "latency_p99_ns",
            "wall_ms",
        ],
        "header": ["n", "d", "requests", "max_batch", "device_batch"],
        # Optional replica-failover sweep (bench_serve --chaos). Entries are
        # matched by the death count; every row must carry the balance
        # counters and must actually balance (injected == recovered + shed).
        "chaos_keys": ["deaths"],
        "chaos_required": [
            "deaths", "shards", "replicas", "served", "shed_queries",
            "degraded_dispatches", "injected", "recovered", "shed_ops",
            "attempts_failed", "slack_fills", "balanced",
        ],
    },
    "pimine.bench.mutation.v1": {
        "keys": ["insert_batch", "watermark"],
        "required": [
            "insert_batch", "watermark", "steps", "queries_run", "final_live",
            "appended_rows", "deleted_rows", "compactions", "compacted_rows",
            "residual_delta_rows", "residual_tombstones", "row_writes",
            "naive_row_writes", "write_savings", "worn_rows",
            "identical_to_fresh_program", "wall_ms",
        ],
        "header": ["n", "d", "base_rows", "stream_rows", "k", "queries"],
    },
}


# The rolling-telemetry document of the serving layer (obs::TimeSeries).
# Not a sweep: one header, a "series" map of sparse per-window points, and
# the SLO burn-rate block. Point arity is fixed per series type.
TIMESERIES_SCHEMA = "pimine.obs.timeseries.v1"
TIMESERIES_HEADER = ["schema", "window_ns", "num_windows", "oldest_window",
                     "newest_window", "dropped_late", "series", "slo"]
TIMESERIES_SLO = ["bad", "total", "budget", "short_windows", "long_windows",
                  "short_burn", "long_burn"]
# counter point: [window, count, rate_per_s]
# histogram point: [window, count, sum_ticks, max_ticks, p50, p99]
TIMESERIES_POINT_ARITY = {"counter": 3, "histogram": 6}


def validate_timeseries(path, doc):
    missing = [f for f in TIMESERIES_HEADER if f not in doc]
    if missing:
        sys.exit(f"error: {path}: missing timeseries fields {missing}")
    missing_slo = [f for f in TIMESERIES_SLO if f not in doc["slo"]]
    if missing_slo:
        sys.exit(f"error: {path}: slo block missing {missing_slo}")
    if not isinstance(doc["series"], dict):
        sys.exit(f"error: {path}: 'series' is not an object")
    oldest, newest = doc["oldest_window"], doc["newest_window"]
    points = 0
    for name, series in sorted(doc["series"].items()):
        arity = TIMESERIES_POINT_ARITY.get(series.get("type"))
        if arity is None:
            sys.exit(f"error: {path}: series '{name}' has unknown type "
                     f"'{series.get('type')}'")
        for p in series.get("points", []):
            if not isinstance(p, list) or len(p) != arity:
                sys.exit(f"error: {path}: series '{name}' point {p} is not "
                         f"a {arity}-element list")
            if not oldest <= p[0] <= newest:
                sys.exit(f"error: {path}: series '{name}' window {p[0]} "
                         f"outside retention [{oldest}, {newest}]")
            points += 1
    print(f"{path}: valid ({TIMESERIES_SCHEMA}, {len(doc['series'])} series, "
          f"{points} points)")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path} is not a JSON object")
    if doc.get("schema") == TIMESERIES_SCHEMA:
        return doc
    if not isinstance(doc.get("sweep"), list):
        sys.exit(f"error: {path} is not a bench sweep document "
                 "(object with a 'sweep' list)")
    return doc


def schema_of(doc):
    return SCHEMAS.get(doc.get("schema") or doc.get("bench"))


def validate(path):
    doc = load(path)
    if doc.get("schema") == TIMESERIES_SCHEMA:
        validate_timeseries(path, doc)
        return
    schema = schema_of(doc)
    if schema is None:
        print(f"{path}: parses; unknown schema "
              f"'{doc.get('schema') or doc.get('bench')}' (parse-only check)")
        return
    missing_header = [f for f in schema["header"] if f not in doc]
    if missing_header:
        sys.exit(f"error: {path}: missing header fields {missing_header}")
    for i, entry in enumerate(doc["sweep"]):
        missing = [f for f in schema["required"] if f not in entry]
        if missing:
            sys.exit(f"error: {path}: sweep[{i}] missing fields {missing}")
    if not doc["sweep"]:
        sys.exit(f"error: {path}: empty sweep")
    chaos = doc.get("chaos_sweep")
    if chaos is not None and "chaos_required" in schema:
        if not isinstance(chaos, list) or not chaos:
            sys.exit(f"error: {path}: chaos_sweep is not a non-empty list")
        for i, entry in enumerate(chaos):
            missing = [f for f in schema["chaos_required"] if f not in entry]
            if missing:
                sys.exit(f"error: {path}: chaos_sweep[{i}] missing fields "
                         f"{missing}")
            if entry.get("injected") != (entry.get("recovered", 0) +
                                         entry.get("shed_ops", 0)):
                sys.exit(f"error: {path}: chaos_sweep[{i}] failover counters "
                         f"do not balance (injected != recovered + shed_ops)")
            if entry.get("balanced") is not True:
                sys.exit(f"error: {path}: chaos_sweep[{i}] reports "
                         "balanced=false")
    chaos_note = (f", {len(chaos)} chaos entries" if chaos else "")
    print(f"{path}: valid ({doc.get('schema') or doc.get('bench')}, "
          f"{len(doc['sweep'])} entries{chaos_note})")


def entry_key(entry, keys):
    return tuple(entry.get(k) for k in keys)


def diff(old_path, new_path):
    old, new = load(old_path), load(new_path)
    if TIMESERIES_SCHEMA in (old.get("schema"), new.get("schema")):
        # Telemetry documents carry the determinism contract: they are
        # either identical or the replay diverged — no tolerance band.
        if old == new:
            print("timeseries documents identical")
            return
        for field in TIMESERIES_HEADER:
            if old.get(field) != new.get(field) and field != "series":
                print(f"timeseries mismatch: {field}: "
                      f"{old.get(field)} -> {new.get(field)}")
        only_old = sorted(set(old.get("series", {})) - set(new.get("series", {})))
        only_new = sorted(set(new.get("series", {})) - set(old.get("series", {})))
        if only_old:
            print(f"series only in {old_path}: {only_old}")
        if only_new:
            print(f"series only in {new_path}: {only_new}")
        for name in sorted(set(old.get("series", {})) & set(new.get("series", {}))):
            if old["series"][name] != new["series"][name]:
                print(f"series '{name}' diverged")
        sys.exit(1)
    schema = schema_of(old)
    keys = schema["keys"] if schema else []
    header = schema["header"] if schema else []

    mismatched = [f for f in header if old.get(f) != new.get(f)]
    if mismatched:
        for f in mismatched:
            print(f"header mismatch: {f}: {old.get(f)} -> {new.get(f)}")
        sys.exit(1)

    diff_entries(old["sweep"], new["sweep"], keys, old_path)

    # Optional chaos_sweep (bench_serve --chaos): diffed when both documents
    # carry one; a one-sided chaos_sweep is reported but not an error (the
    # plain and --chaos modes of the same bench).
    old_chaos, new_chaos = old.get("chaos_sweep"), new.get("chaos_sweep")
    if old_chaos and new_chaos:
        print("chaos_sweep:")
        diff_entries(old_chaos, new_chaos,
                     (schema or {}).get("chaos_keys", []), old_path)
    elif old_chaos or new_chaos:
        which = old_path if old_chaos else new_path
        print(f"chaos_sweep only in {which}")


def diff_entries(old_sweep, new_sweep, keys, old_path):
    if keys:
        new_by_key = {entry_key(e, keys): e for e in new_sweep}
        pairs = [(e, new_by_key.get(entry_key(e, keys))) for e in old_sweep]
    else:
        pairs = list(zip(old_sweep, new_sweep))

    for old_entry, new_entry in pairs:
        label = (", ".join(f"{k}={old_entry.get(k)}" for k in keys)
                 if keys else "entry")
        if new_entry is None:
            print(f"[{label}] only in {old_path}")
            continue
        print(f"[{label}]")
        for field, old_value in old_entry.items():
            if field in keys or not isinstance(old_value, (int, float)) \
                    or isinstance(old_value, bool):
                continue
            new_value = new_entry.get(field)
            if not isinstance(new_value, (int, float)):
                continue
            delta = new_value - old_value
            rel = f" ({delta / old_value:+.1%})" if old_value else ""
            marker = "  " if delta == 0 else "* "
            print(f"  {marker}{field}: {old_value} -> {new_value}{rel}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", metavar="FILE",
                        help="schema-check one bench JSON and exit")
    parser.add_argument("files", nargs="*", metavar="OLD NEW",
                        help="two bench JSONs to diff")
    args = parser.parse_args()
    if args.validate:
        if args.files:
            parser.error("--validate takes exactly one file")
        validate(args.validate)
    elif len(args.files) == 2:
        diff(args.files[0], args.files[1])
    else:
        parser.error("pass --validate FILE or exactly two files to diff")


if __name__ == "__main__":
    main()
